//! Adaptive loading policies (paper §3 and §4).
//!
//! "Queries become the first class citizen that define loading, storage and
//! execution patterns." Each `LoadingStrategy` (see [`crate::config`]) is
//! one answer to the paper's three questions — *when* to load (during query
//! processing), *how much* (nothing / everything / the referenced columns /
//! the qualifying tuples), and *how* (monolithic scans, pushdown scans, or
//! split per-column files).
//!
//! [`materialize`] is the adaptive-load operator the optimizer plugs into a
//! query plan: given the columns a query references and its pushable filter,
//! it returns those columns materialised, fetching whatever is missing from
//! the raw file according to the active policy, and recording everything it
//! learned (positional map entries, fragments, split files) for the next
//! query.

use std::collections::BTreeMap;
use std::sync::Arc;

use nodb_rawcsv::tokenizer::{read_file, scan_bytes, ScanSpec};
use nodb_store::Fragment;
use nodb_types::{
    Bound, CmpOp, ColPred, ColumnData, Conjunction, Error, Interval, Result, SelectionBox,
    WorkCounters,
};

use crate::catalog::TableEntry;
use crate::config::{EngineConfig, LoadingStrategy};

/// The product of an adaptive load: the referenced columns, materialised.
#[derive(Debug)]
pub struct Materialized {
    /// Materialised columns keyed by table-local ordinal, all aligned.
    pub cols: BTreeMap<usize, Arc<ColumnData>>,
    /// Number of aligned rows.
    pub n_rows: usize,
    /// Original rowids when the materialisation is a filtered subset
    /// (`None` = dense, row `i` is rowid `i`).
    pub rowids: Option<Vec<u64>>,
    /// True when the policy already applied the query's filter during
    /// loading (selection pushdown) — the engine must not filter again.
    pub prefiltered: bool,
}

impl Materialized {
    fn dense(cols: BTreeMap<usize, Arc<ColumnData>>, n_rows: usize) -> Materialized {
        Materialized {
            cols,
            n_rows,
            rowids: None,
            prefiltered: false,
        }
    }
}

/// Materialise `needed` columns of `entry` under the configured policy.
/// `filter` is the query's conjunction over this table (local ordinals);
/// policies that push selections down will apply it during the file scan.
pub fn materialize(
    entry: &mut TableEntry,
    needed: &[usize],
    filter: &Conjunction,
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Materialized> {
    nodb_types::failpoints::trip("store.materialize")?;
    if entry.resident {
        // Result tables live wholly in the adaptive store: every policy
        // degenerates to a store read (there is no file to scan).
        let n = entry
            .store
            .nrows()
            .ok_or_else(|| Error::exec("resident table has no row count"))?;
        if needed.is_empty() {
            return Ok(Materialized::dense(BTreeMap::new(), n as usize));
        }
        return dense_from_store(entry, needed, now);
    }
    match cfg.strategy {
        LoadingStrategy::FullLoad => full_load(entry, needed, cfg, counters, now),
        LoadingStrategy::ExternalScan => external_scan(entry, needed, cfg, counters),
        LoadingStrategy::ColumnLoads => column_loads(entry, needed, cfg, counters, now),
        LoadingStrategy::PartialLoadsV1 => partial_v1(entry, needed, filter, cfg, counters),
        LoadingStrategy::PartialLoadsV2 => partial_v2(entry, needed, filter, cfg, counters, now),
        LoadingStrategy::SplitFiles => split_files(entry, needed, cfg, counters, now),
    }
}

/// Read the raw file and return its bytes with the header row sliced off.
pub(crate) fn read_data_bytes(entry: &TableEntry, counters: &WorkCounters) -> Result<Vec<u8>> {
    let mut bytes = read_file(&entry.path, counters)?;
    let start = entry.data_start() as usize;
    if start > 0 {
        bytes.drain(..start.min(bytes.len()));
    }
    Ok(bytes)
}

/// Scan the raw file for `needed` columns with an optional pushdown filter.
fn scan_raw(
    entry: &mut TableEntry,
    needed: &[usize],
    pushdown: Option<&Conjunction>,
    cfg: &EngineConfig,
    counters: &WorkCounters,
) -> Result<nodb_rawcsv::ScanOutput> {
    let bytes = read_data_bytes(entry, counters)?;
    let schema = entry.schema()?.clone();
    let spec = ScanSpec {
        schema: &schema,
        needed: needed.to_vec(),
        pushdown,
    };
    let posmap = cfg.use_positional_map.then_some(&mut entry.posmap);
    scan_bytes(&bytes, &cfg.csv, &spec, posmap, counters)
}

/// Dense materialisation of `needed` straight from fully loaded columns.
fn dense_from_store(entry: &mut TableEntry, needed: &[usize], now: u64) -> Result<Materialized> {
    let n = entry
        .store
        .nrows()
        .ok_or_else(|| Error::exec("row count unknown; no load has run"))? as usize;
    let mut cols = BTreeMap::new();
    for &c in needed {
        let col = entry
            .store
            .full_column(c, now)
            .ok_or_else(|| Error::exec(format!("column {c} expected to be loaded")))?;
        cols.insert(c, col);
    }
    Ok(Materialized::dense(cols, n))
}

/// Ensure the table's row count is known (phase-1-only scan if needed).
fn ensure_nrows(
    entry: &mut TableEntry,
    cfg: &EngineConfig,
    counters: &WorkCounters,
) -> Result<u64> {
    if let Some(n) = entry.store.nrows() {
        return Ok(n);
    }
    let out = scan_raw(entry, &[], None, cfg, counters)?;
    entry.store.set_nrows(out.rows_scanned);
    Ok(out.rows_scanned)
}

/// Pick the adaptive index's serving column: the first filter column that
/// is constrained, fully loaded and null-free int.
fn crackable_pick(entry: &TableEntry, filter: &Conjunction) -> Option<(usize, Interval)> {
    let bbox = filter.to_box()?;
    for (col, iv) in &bbox.by_col {
        if iv.is_all() {
            continue;
        }
        let Some(data) = entry.store.peek_full(*col) else {
            continue;
        };
        if matches!(&**data, ColumnData::Int64 { nulls: None, .. }) {
            return Some((*col, iv.clone()));
        }
    }
    None
}

/// Ensure `col` has a partitioned cracked copy: one cracker piece per
/// worker, so partitions refine independently under their own locks and
/// range queries stop serializing on one entry-wide mutex. Returns the
/// shared index handle.
fn ensure_cracked(
    entry: &mut TableEntry,
    col: usize,
    cfg: &EngineConfig,
    now: u64,
) -> Arc<nodb_store::PartitionedCracked> {
    if !entry.store.has_cracked(col) {
        let data = entry.store.peek_full(col).expect("checked");
        let vals = data.as_i64_slice().expect("checked int").to_vec();
        entry.store.insert_cracked(
            col,
            nodb_store::PartitionedCracked::new(vals, cfg.threads.max(1)),
            now,
        );
    }
    entry.store.cracked(col, now).expect("just ensured")
}

/// Gather `needed` columns at the cracked selection's rowids into a
/// rowid-restricted [`Materialized`] with `prefiltered = false`: the
/// engine re-applies the full conjunction, which is sound (the cracked
/// rows already satisfy the cracked predicate) and keeps multi-predicate
/// semantics exact.
fn cracked_materialization(
    cols_in: BTreeMap<usize, Arc<ColumnData>>,
    mut rowids: Vec<u64>,
) -> Materialized {
    // Keep plain projections deterministic across access paths.
    rowids.sort_unstable();
    let positions: Vec<usize> = rowids.iter().map(|&r| r as usize).collect();
    let cols = cols_in
        .into_iter()
        .map(|(c, data)| (c, Arc::new(data.take(&positions))))
        .collect();
    Materialized {
        cols,
        n_rows: rowids.len(),
        rowids: Some(rowids),
        prefiltered: false,
    }
}

/// The adaptive-index fast path, called by the engine *outside* the
/// long-lived entry write lock — before it for warm queries, and again
/// right after the policy load for cold ones (cold-load cracking thus
/// never holds the entry lock either): when every needed column is fully
/// loaded and the filter constrains a crackable column, snapshot `Arc`
/// handles to the index and the columns under a short write lock, then
/// crack **outside** it — racing range queries refine the partitioned
/// index concurrently under its per-partition locks instead of
/// serializing on the table entry. Returns `None` (state untouched beyond
/// LRU stamps and possibly installing the index) when the shape does not
/// qualify; the ordinary policy path then runs.
pub(crate) fn try_cracked_warm(
    entry: &parking_lot::RwLock<TableEntry>,
    needed: &[usize],
    filter: &Conjunction,
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Option<Materialized>> {
    if !cfg.use_cracking || filter.is_always_true() || needed.is_empty() {
        return Ok(None);
    }
    // Cracking serves full columns: the full-column policies, plus
    // PartialLoadsV2 once its monitor has escalated a column set to full
    // loads (the `missing_full` check below keeps un-escalated partial
    // state on the fragment path).
    if !matches!(
        cfg.strategy,
        LoadingStrategy::FullLoad | LoadingStrategy::ColumnLoads | LoadingStrategy::PartialLoadsV2
    ) {
        return Ok(None);
    }
    // Short lock: validate state, install the index if missing, clone
    // the shared handles. Installs are serialized by this write lock and
    // guarded by `has_cracked`, so the index is built exactly once.
    let (index, cols, iv) = {
        let mut e = entry.write();
        if e.resident {
            return Ok(None);
        }
        e.ensure_current(&cfg.csv, cfg.infer_sample_rows, counters)?;
        if !e.store.missing_full(needed).is_empty() {
            return Ok(None); // cold: the policy path loads first
        }
        let Some((col, iv)) = crackable_pick(&e, filter) else {
            return Ok(None);
        };
        // Building the partitioned index (first crack of this column) is
        // cracking work; the select below times itself inside the store.
        let index = nodb_types::profile::time(nodb_types::profile::Phase::Cracking, || {
            ensure_cracked(&mut e, col, cfg, now)
        });
        let mut cols = BTreeMap::new();
        for &c in needed {
            let data = e
                .store
                .full_column(c, now)
                .ok_or_else(|| Error::exec(format!("column {c} expected to be loaded")))?;
            cols.insert(c, data);
        }
        (index, cols, iv)
    };
    // Crack outside the entry lock: only partition locks are held.
    let Some((_, rowids)) = index.select_parallel(&iv, cfg.threads) else {
        return Ok(None); // non-int bounds; fall back to scans
    };
    // Byte-accounting catch-up under a short re-lock. V2's monitor still
    // counts this query as a store hit — the fragment path this fast path
    // bypassed would have (the full-column policies count nothing on
    // their dense paths, so nothing is recorded for them here either).
    {
        let mut e = entry.write();
        e.store.refresh_cracked_bytes();
        if matches!(cfg.strategy, LoadingStrategy::PartialLoadsV2) {
            e.monitor.record_hit(needed);
        }
    }
    Ok(Some(cracked_materialization(cols, rowids)))
}

// ----- FullLoad (the "MonetDB" curve) -----------------------------------

fn full_load(
    entry: &mut TableEntry,
    needed: &[usize],
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Materialized> {
    let all: Vec<usize> = (0..entry.schema()?.len()).collect();
    let missing = entry.store.missing_full(&all);
    if !missing.is_empty() {
        let out = scan_raw(entry, &missing, None, cfg, counters)?;
        for (c, col) in out.columns {
            entry.store.insert_full(c, col, now);
        }
        entry.store.set_nrows(out.rows_scanned);
    }
    if needed.is_empty() {
        let n = ensure_nrows(entry, cfg, counters)?;
        return Ok(Materialized::dense(BTreeMap::new(), n as usize));
    }
    dense_from_store(entry, needed, now)
}

// ----- ExternalScan (the "MySQL CSV engine" curve) ----------------------

fn external_scan(
    entry: &mut TableEntry,
    needed: &[usize],
    cfg: &EngineConfig,
    counters: &WorkCounters,
) -> Result<Materialized> {
    // Models an engine that keeps no state: every query re-reads and fully
    // re-parses the file (all columns, no pushdown, no positional map).
    let bytes = read_data_bytes(entry, counters)?;
    let schema = entry.schema()?.clone();
    let all: Vec<usize> = (0..schema.len()).collect();
    let spec = ScanSpec {
        schema: &schema,
        needed: all,
        pushdown: None,
    };
    let out = scan_bytes(&bytes, &cfg.csv, &spec, None, counters)?;
    let n = out.rows_scanned as usize;
    let mut cols = BTreeMap::new();
    for (c, col) in out.columns {
        if needed.contains(&c) {
            cols.insert(c, Arc::new(col));
        }
    }
    Ok(Materialized::dense(cols, n))
}

// ----- ColumnLoads (the "Column Loads" curve) ---------------------------

fn column_loads(
    entry: &mut TableEntry,
    needed: &[usize],
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Materialized> {
    if needed.is_empty() {
        let n = ensure_nrows(entry, cfg, counters)?;
        return Ok(Materialized::dense(BTreeMap::new(), n as usize));
    }
    let missing = entry.store.missing_full(needed);
    if !missing.is_empty() {
        if cfg.one_column_per_trip {
            // Ablation A1: the paper's "operators that load only one column
            // at a time ... much more expensive due to the need to touch the
            // flat file multiple times within a single query plan".
            for &c in &missing {
                let out = scan_raw(entry, &[c], None, cfg, counters)?;
                for (cc, col) in out.columns {
                    entry.store.insert_full(cc, col, now);
                }
            }
        } else {
            // One adaptive-load operator fetches all missing columns in a
            // single trip (§3.1.3).
            let out = scan_raw(entry, &missing, None, cfg, counters)?;
            for (c, col) in out.columns {
                entry.store.insert_full(c, col, now);
            }
        }
    }
    dense_from_store(entry, needed, now)
}

// ----- PartialLoadsV1 (pushdown scan, discard) --------------------------

fn partial_v1(
    entry: &mut TableEntry,
    needed: &[usize],
    filter: &Conjunction,
    cfg: &EngineConfig,
    counters: &WorkCounters,
) -> Result<Materialized> {
    let out = scan_raw(entry, needed, Some(filter), cfg, counters)?;
    entry.store.set_nrows(out.rows_scanned);
    let n = out.rowids.len();
    let cols = out
        .columns
        .into_iter()
        .map(|(c, col)| (c, Arc::new(col)))
        .collect();
    Ok(Materialized {
        cols,
        n_rows: n,
        rowids: Some(out.rowids),
        prefiltered: true,
    })
}

// ----- PartialLoadsV2 (pushdown scan, cache fragments) ------------------

fn partial_v2(
    entry: &mut TableEntry,
    needed: &[usize],
    filter: &Conjunction,
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Materialized> {
    // Fully loaded columns (e.g. after monitor escalation) answer directly.
    if !needed.is_empty() && entry.store.missing_full(needed).is_empty() {
        entry.monitor.record_hit(needed);
        return dense_from_store(entry, needed, now);
    }

    let Some(bbox) = filter.to_box() else {
        // Not box-expressible (contains `<>`) or provably empty.
        if filter.preds.iter().all(|p| p.op != CmpOp::Ne) {
            // Contradictory range: empty result, no file trip needed once
            // the schema is known.
            let schema = entry.schema()?.clone();
            let mut cols = BTreeMap::new();
            for &c in needed {
                let ty = schema
                    .field(c)
                    .ok_or_else(|| Error::schema(format!("ordinal {c} out of range")))?
                    .data_type;
                cols.insert(c, Arc::new(ColumnData::empty(ty)));
            }
            return Ok(Materialized {
                cols,
                n_rows: 0,
                rowids: Some(Vec::new()),
                prefiltered: true,
            });
        }
        // `<>` predicates: behave like V1 (pushdown, no caching).
        return partial_v1(entry, needed, filter, cfg, counters);
    };

    // Monitor escalation (§5.5): repeated misses on this column set mean
    // partial fragments keep failing this workload — load full columns.
    if cfg.monitor
        && !needed.is_empty()
        && entry
            .monitor
            .should_escalate(needed, cfg.escalate_after_misses)
    {
        return column_loads(entry, needed, cfg, counters, now);
    }

    // 1. A single stored fragment covering the whole box?
    if let Some(fid) = entry.store.find_covering_fragment(&bbox, needed) {
        entry.store.touch_fragment(fid, now);
        entry.monitor.record_hit(needed);
        let frag = entry.store.fragment(fid).expect("just found");
        let (rowids, cols) = frag.restrict(&bbox, needed)?;
        let n = rowids.len();
        return Ok(Materialized {
            cols: cols.into_iter().map(|(c, v)| (c, Arc::new(v))).collect(),
            n_rows: n,
            rowids: Some(rowids),
            prefiltered: true,
        });
    }

    // 2. Single-column box: exact interval arithmetic lets us fetch only
    //    the missing value ranges and stitch them with stored fragments.
    if bbox.by_col.len() == 1 {
        let (&col, iv) = bbox.by_col.iter().next().expect("single entry");
        let toc = entry.store.loaded_intervals(col, needed);
        let gaps = toc.missing(iv);
        if gaps.is_empty() {
            entry.monitor.record_hit(needed);
        } else {
            entry.monitor.record_miss(needed);
            for gap in gaps {
                let gap_conj = interval_to_conjunction(col, &gap);
                let out = scan_raw(entry, needed, Some(&gap_conj), cfg, counters)?;
                entry.store.set_nrows(out.rows_scanned);
                let mut frag_box = SelectionBox::all();
                frag_box.by_col.insert(col, gap);
                entry.store.insert_fragment(Fragment {
                    bbox: frag_box,
                    rowids: out.rowids,
                    cols: out.columns,
                    last_used: now,
                });
            }
        }
        let ids = entry.store.one_dim_fragments(col, needed);
        for &id in &ids {
            entry.store.touch_fragment(id, now);
        }
        let (rowids, cols) = entry.store.gather_one_dim(&ids, col, iv, needed)?;
        let n = rowids.len();
        return Ok(Materialized {
            cols: cols.into_iter().map(|(c, v)| (c, Arc::new(v))).collect(),
            n_rows: n,
            rowids: Some(rowids),
            prefiltered: true,
        });
    }

    // 3. Multi-column box, not covered: load the whole box from the file
    //    and remember it (the "simple" extreme of §5.1.2).
    entry.monitor.record_miss(needed);
    let out = scan_raw(entry, needed, Some(filter), cfg, counters)?;
    entry.store.set_nrows(out.rows_scanned);
    let n = out.rowids.len();
    let arc_cols: BTreeMap<usize, Arc<ColumnData>> = out
        .columns
        .iter()
        .map(|(&c, col)| (c, Arc::new(col.clone())))
        .collect();
    entry.store.insert_fragment(Fragment {
        bbox: bbox.clone(),
        rowids: out.rowids.clone(),
        cols: out.columns,
        last_used: now,
    });
    Ok(Materialized {
        cols: arc_cols,
        n_rows: n,
        rowids: Some(out.rowids),
        prefiltered: true,
    })
}

/// Translate an interval back into a pushable conjunction on one column.
fn interval_to_conjunction(col: usize, iv: &Interval) -> Conjunction {
    let mut preds = Vec::new();
    match iv.lo() {
        Bound::Unbounded => {}
        Bound::Inclusive(v) => preds.push(ColPred::new(col, CmpOp::Ge, v.clone())),
        Bound::Exclusive(v) => preds.push(ColPred::new(col, CmpOp::Gt, v.clone())),
    }
    match iv.hi() {
        Bound::Unbounded => {}
        Bound::Inclusive(v) => preds.push(ColPred::new(col, CmpOp::Le, v.clone())),
        Bound::Exclusive(v) => preds.push(ColPred::new(col, CmpOp::Lt, v.clone())),
    }
    Conjunction::new(preds)
}

// ----- SplitFiles (the "Split Files" curve, §4) --------------------------

fn split_files(
    entry: &mut TableEntry,
    needed: &[usize],
    cfg: &EngineConfig,
    counters: &WorkCounters,
    now: u64,
) -> Result<Materialized> {
    if needed.is_empty() {
        let n = ensure_nrows(entry, cfg, counters)?;
        return Ok(Materialized::dense(BTreeMap::new(), n as usize));
    }
    let schema = entry.schema()?.clone();
    loop {
        let missing = entry.store.missing_full(needed);
        let Some(&col) = missing.first() else { break };
        let data_start = entry.data_start() as usize;
        // Locate the segment and clone its descriptor so the catalog borrow
        // ends before we touch the store / positional maps.
        let (si, li, seg) = {
            let segments = entry.segments_mut()?;
            let (si, li) = segments
                .locate(col)
                .ok_or_else(|| Error::schema(format!("column {col} not in segment catalog")))?;
            (si, li, segments.segments()[si].clone())
        };
        let bytes = read_file(&seg.path, counters)?;
        let slice = if seg.is_original && data_start > 0 {
            &bytes[data_start.min(bytes.len())..]
        } else {
            &bytes[..]
        };
        let mut opts = cfg.csv.clone();
        // Blank line = NULL row in generated per-column files.
        opts.skip_blank_rows = seg.is_original;
        if seg.width() == 1 {
            // Scan the single-column file: tokenization is just newline
            // splitting — the whole point of splitting (§4.1.4).
            let seg_schema = schema.project(&seg.cols)?;
            let spec = ScanSpec {
                schema: &seg_schema,
                needed: vec![0],
                pushdown: None,
            };
            let posmap = cfg
                .use_positional_map
                .then(|| entry.segment_posmaps.entry(seg.path.clone()).or_default());
            let out = scan_bytes(slice, &opts, &spec, posmap, counters)?;
            let col_data = out
                .columns
                .into_iter()
                .next()
                .map(|(_, c)| c)
                .unwrap_or_else(|| ColumnData::empty(schema.field(col).expect("valid").data_type));
            entry.store.insert_full(col, col_data, now);
        } else {
            // Crack the segment: everything up to the *largest* missing
            // column in this segment becomes per-column files in one pass.
            let missing_in_seg_max = missing
                .iter()
                .filter_map(|c| seg.cols.iter().position(|&sc| sc == *c))
                .max()
                .unwrap_or(li);
            entry
                .segments_mut()?
                .split_segment(si, missing_in_seg_max, slice, &opts, counters)?;
            // Loop around: the column is now in a single-column segment.
        }
    }
    dense_from_store(entry, needed, now)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use std::path::PathBuf;

    fn setup(name: &str, content: &str) -> (PathBuf, crate::catalog::Catalog) {
        let dir = std::env::temp_dir().join(format!("nodb_policy_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, content).unwrap();
        let mut cat = Catalog::new();
        cat.register("t", &path, Some(&dir.join("store"))).unwrap();
        (path, cat)
    }

    fn cfg(strategy: LoadingStrategy) -> EngineConfig {
        let mut c = EngineConfig::with_strategy(strategy);
        c.csv.threads = 1;
        c
    }

    fn range(col: usize, lo: i64, hi: i64) -> Conjunction {
        Conjunction::new(vec![
            ColPred::new(col, CmpOp::Gt, lo),
            ColPred::new(col, CmpOp::Lt, hi),
        ])
    }

    const DATA: &str = "0,10,100\n1,11,101\n2,12,102\n3,13,103\n4,14,104\n";

    fn mat(
        cat: &Catalog,
        strategy: LoadingStrategy,
        needed: &[usize],
        filter: &Conjunction,
        counters: &WorkCounters,
        now: u64,
    ) -> Materialized {
        let entry = cat.get("t").unwrap();
        let mut e = entry.write();
        let c = cfg(strategy);
        e.ensure_current(&c.csv, 16, counters).unwrap();
        materialize(&mut e, needed, filter, &c, counters, now).unwrap()
    }

    #[test]
    fn full_load_loads_everything_once() {
        let (_p, cat) = setup("full", DATA);
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::FullLoad,
            &[0],
            &Conjunction::always(),
            &c,
            1,
        );
        assert_eq!(m.n_rows, 5);
        assert!(!m.prefiltered);
        // All three columns parsed even though one was needed.
        assert_eq!(c.snapshot().values_parsed, 15);
        assert_eq!(c.snapshot().file_trips, 1);
        // Second query: no new trips.
        let before = c.snapshot();
        let m2 = mat(
            &cat,
            LoadingStrategy::FullLoad,
            &[2],
            &Conjunction::always(),
            &c,
            2,
        );
        assert_eq!(
            m2.cols[&2].as_i64_slice().unwrap(),
            &[100, 101, 102, 103, 104]
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
    }

    #[test]
    fn column_loads_fetches_only_missing() {
        let (_p, cat) = setup("col", DATA);
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::ColumnLoads,
            &[0, 1],
            &Conjunction::always(),
            &c,
            1,
        );
        assert_eq!(m.n_rows, 5);
        // Only 2 of 3 columns parsed.
        assert_eq!(c.snapshot().values_parsed, 10);
        // Next query needing col 1 only: zero trips.
        let before = c.snapshot();
        mat(
            &cat,
            LoadingStrategy::ColumnLoads,
            &[1],
            &Conjunction::always(),
            &c,
            2,
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
        // Query needing col 2: one more trip, parses only col 2.
        let before = c.snapshot();
        mat(
            &cat,
            LoadingStrategy::ColumnLoads,
            &[2],
            &Conjunction::always(),
            &c,
            3,
        );
        let d = c.snapshot().since(&before);
        assert_eq!(d.file_trips, 1);
        assert_eq!(d.values_parsed, 5);
    }

    #[test]
    fn one_column_per_trip_ablation_costs_more_trips() {
        let (_p, cat) = setup("percol", DATA);
        let c = WorkCounters::new();
        let entry = cat.get("t").unwrap();
        let mut e = entry.write();
        let mut conf = cfg(LoadingStrategy::ColumnLoads);
        conf.one_column_per_trip = true;
        e.ensure_current(&conf.csv, 16, &c).unwrap();
        materialize(&mut e, &[0, 1, 2], &Conjunction::always(), &conf, &c, 1).unwrap();
        assert_eq!(c.snapshot().file_trips, 3);
    }

    #[test]
    fn external_scan_always_reparses_everything() {
        let (_p, cat) = setup("ext", DATA);
        let c = WorkCounters::new();
        for q in 1..=3u64 {
            let m = mat(
                &cat,
                LoadingStrategy::ExternalScan,
                &[0],
                &range(0, 0, 4),
                &c,
                q,
            );
            assert!(!m.prefiltered);
            assert_eq!(m.n_rows, 5);
        }
        let s = c.snapshot();
        assert_eq!(s.file_trips, 3);
        assert_eq!(s.values_parsed, 45, "3 queries × 5 rows × all 3 columns");
    }

    #[test]
    fn partial_v1_pushes_down_and_discards() {
        let (_p, cat) = setup("v1", DATA);
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::PartialLoadsV1,
            &[1],
            &range(0, 0, 4),
            &c,
            1,
        );
        assert!(m.prefiltered);
        assert_eq!(m.n_rows, 3);
        assert_eq!(m.cols[&1].as_i64_slice().unwrap(), &[11, 12, 13]);
        assert_eq!(m.rowids.as_deref(), Some(&[1, 2, 3][..]));
        // Nothing cached: same query pays another trip.
        let before = c.snapshot();
        mat(
            &cat,
            LoadingStrategy::PartialLoadsV1,
            &[1],
            &range(0, 0, 4),
            &c,
            2,
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 1);
        let entry = cat.get("t").unwrap();
        assert!(entry.read().store.fragment_ids().is_empty());
    }

    #[test]
    fn partial_v2_caches_and_reuses_fragments() {
        let (_p, cat) = setup("v2", DATA);
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0, 1],
            &range(0, 0, 4),
            &c,
            1,
        );
        assert_eq!(m.n_rows, 3);
        // Exact rerun: zero file trips (Figure 4's rerun pattern).
        let before = c.snapshot();
        let m2 = mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0, 1],
            &range(0, 0, 4),
            &c,
            2,
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
        assert_eq!(m2.n_rows, 3);
        assert_eq!(m2.cols[&1].as_i64_slice().unwrap(), &[11, 12, 13]);
        // Narrower query: still covered.
        let before = c.snapshot();
        let m3 = mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0, 1],
            &range(0, 1, 3),
            &c,
            3,
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
        assert_eq!(m3.n_rows, 1);
        assert_eq!(m3.cols[&0].as_i64_slice().unwrap(), &[2]);
    }

    #[test]
    fn partial_v2_fetches_only_missing_ranges() {
        let (_p, cat) = setup("v2gap", DATA);
        let c = WorkCounters::new();
        // Load rows with a1 in (0,2) = {1}.
        mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0],
            &range(0, 0, 2),
            &c,
            1,
        );
        // Now ask for (0,4): only the gap (2,4) = [2,3] must come from the
        // file — 2 rows qualify in the gap.
        let before = c.snapshot();
        let m = mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0],
            &range(0, 0, 4),
            &c,
            2,
        );
        let d = c.snapshot().since(&before);
        assert_eq!(d.file_trips, 1);
        assert_eq!(m.n_rows, 3);
        assert_eq!(m.cols[&0].as_i64_slice().unwrap(), &[1, 2, 3]);
        // The union now covers (0,4): rerun needs no trip.
        let before = c.snapshot();
        mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0],
            &range(0, 0, 4),
            &c,
            3,
        );
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
    }

    #[test]
    fn partial_v2_contradictory_filter_returns_empty_without_trip() {
        let (_p, cat) = setup("v2empty", DATA);
        let c = WorkCounters::new();
        // Prime the schema (the setup call inside `mat` does inference).
        mat(
            &cat,
            LoadingStrategy::PartialLoadsV2,
            &[0],
            &range(0, 0, 4),
            &c,
            1,
        );
        let before = c.snapshot();
        let contradiction = Conjunction::new(vec![
            ColPred::new(0, CmpOp::Gt, 10i64),
            ColPred::new(0, CmpOp::Lt, 5i64),
        ]);
        let entry = cat.get("t").unwrap();
        let mut e = entry.write();
        let conf = cfg(LoadingStrategy::PartialLoadsV2);
        let m = materialize(&mut e, &[0], &contradiction, &conf, &c, 2).unwrap();
        assert_eq!(m.n_rows, 0);
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
    }

    #[test]
    fn partial_v2_monitor_escalates_to_full_columns() {
        let (_p, cat) = setup("v2esc", DATA);
        let c = WorkCounters::new();
        // Disjoint 2-D boxes keep missing; after the threshold the monitor
        // escalates to full column loads.
        let entry = cat.get("t").unwrap();
        let conf = {
            let mut x = cfg(LoadingStrategy::PartialLoadsV2);
            x.escalate_after_misses = 2;
            x
        };
        let mut e = entry.write();
        e.ensure_current(&conf.csv, 16, &c).unwrap();
        let boxes = [
            Conjunction::new(vec![
                ColPred::new(0, CmpOp::Gt, 0i64),
                ColPred::new(1, CmpOp::Lt, 12i64),
            ]),
            Conjunction::new(vec![
                ColPred::new(0, CmpOp::Gt, 1i64),
                ColPred::new(1, CmpOp::Lt, 13i64),
            ]),
            Conjunction::new(vec![
                ColPred::new(0, CmpOp::Gt, 2i64),
                ColPred::new(1, CmpOp::Lt, 14i64),
            ]),
        ];
        for (i, b) in boxes.iter().enumerate() {
            materialize(&mut e, &[0, 1], b, &conf, &c, i as u64 + 1).unwrap();
        }
        // After escalation the columns are fully loaded.
        assert!(e.store.has_full(0));
        assert!(e.store.has_full(1));
        // And further queries are store hits without trips.
        let before = c.snapshot();
        let m = materialize(&mut e, &[0, 1], &boxes[0], &conf, &c, 9).unwrap();
        assert!(!m.prefiltered);
        assert_eq!(c.snapshot().since(&before).file_trips, 0);
    }

    #[test]
    fn split_files_cracks_then_reads_small_files() {
        let (_p, cat) = setup("split", DATA);
        let c = WorkCounters::new();
        // First query needs the LAST column: splits the whole file.
        let m = mat(
            &cat,
            LoadingStrategy::SplitFiles,
            &[2],
            &Conjunction::always(),
            &c,
            1,
        );
        assert_eq!(
            m.cols[&2].as_i64_slice().unwrap(),
            &[100, 101, 102, 103, 104]
        );
        assert!(c.snapshot().bytes_written > 0, "split files written");
        let entry = cat.get("t").unwrap();
        {
            let e = entry.read();
            let segs = e.segments.as_ref().unwrap();
            assert!(segs.is_split());
            assert_eq!(segs.segments().len(), 3, "three single-column segments");
        }
        // Loading another column now reads only its small file.
        let before = c.snapshot();
        let m2 = mat(
            &cat,
            LoadingStrategy::SplitFiles,
            &[0],
            &Conjunction::always(),
            &c,
            2,
        );
        assert_eq!(m2.cols[&0].as_i64_slice().unwrap(), &[0, 1, 2, 3, 4]);
        let d = c.snapshot().since(&before);
        assert_eq!(d.file_trips, 1);
        // The per-column file is ~10 bytes vs the 40+-byte original.
        assert!(
            d.bytes_read < 15,
            "read only the small split file, got {}",
            d.bytes_read
        );
    }

    #[test]
    fn split_files_rest_segment_split_recursively() {
        let (_p, cat) = setup("split2", "1,2,3,4\n5,6,7,8\n");
        let c = WorkCounters::new();
        // Query col 0: splits into col0 + rest(1,2,3).
        mat(
            &cat,
            LoadingStrategy::SplitFiles,
            &[0],
            &Conjunction::always(),
            &c,
            1,
        );
        let entry = cat.get("t").unwrap();
        assert_eq!(entry.read().segments.as_ref().unwrap().segments().len(), 2);
        // Query col 2: splits the rest file.
        let m = mat(
            &cat,
            LoadingStrategy::SplitFiles,
            &[2],
            &Conjunction::always(),
            &c,
            2,
        );
        assert_eq!(m.cols[&2].as_i64_slice().unwrap(), &[3, 7]);
        let e = entry.read();
        let segs = e.segments.as_ref().unwrap();
        // col0 | col1 | col2 | rest(col3)
        assert_eq!(segs.segments().len(), 4);
    }

    #[test]
    fn policies_agree_on_results() {
        let (_p, _) = setup("agree", DATA);
        let filter = range(0, 0, 4);
        let mut reference: Option<Vec<i64>> = None;
        for strategy in [
            LoadingStrategy::FullLoad,
            LoadingStrategy::ExternalScan,
            LoadingStrategy::ColumnLoads,
            LoadingStrategy::PartialLoadsV1,
            LoadingStrategy::PartialLoadsV2,
            LoadingStrategy::SplitFiles,
        ] {
            let (_p2, cat) = setup(&format!("agree_{}", strategy.label()), DATA);
            let c = WorkCounters::new();
            let m = mat(&cat, strategy, &[0, 1], &filter, &c, 1);
            // Apply residual filter when the policy did not push down.
            let vals: Vec<i64> = if m.prefiltered {
                m.cols[&1].as_i64_slice().unwrap().to_vec()
            } else {
                let pos = nodb_exec::filter_positions(&m.cols, m.n_rows, &filter).unwrap();
                pos.iter()
                    .map(|&i| m.cols[&1].as_i64_slice().unwrap()[i])
                    .collect()
            };
            match &reference {
                None => reference = Some(vals),
                Some(r) => assert_eq!(&vals, r, "{}", strategy.label()),
            }
        }
    }

    #[test]
    fn header_skipped_in_loads() {
        let (_p, cat) = setup("hdr", "id,score\n1,10\n2,20\n");
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::ColumnLoads,
            &[0, 1],
            &Conjunction::always(),
            &c,
            1,
        );
        assert_eq!(m.n_rows, 2);
        assert_eq!(m.cols[&0].as_i64_slice().unwrap(), &[1, 2]);
    }

    #[test]
    fn count_star_needs_no_columns() {
        let (_p, cat) = setup("count", DATA);
        let c = WorkCounters::new();
        let m = mat(
            &cat,
            LoadingStrategy::ColumnLoads,
            &[],
            &Conjunction::always(),
            &c,
            1,
        );
        assert_eq!(m.n_rows, 5);
        assert!(m.cols.is_empty());
        assert_eq!(c.snapshot().values_parsed, 0, "row count needs no parsing");
    }
}
