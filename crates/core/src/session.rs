//! Session-centric query API: prepared statements, parameter binding and
//! streaming results.
//!
//! The paper frames NoDB as an exploration *loop* — "point to your data
//! and start querying immediately" — and exploration means the same query
//! shapes fired over and over with shifting constants. A [`Session`] is a
//! lightweight handle over a shared [`Engine`] built for that loop:
//!
//! * [`Session::prepare`] parses and plans once; [`Prepared::bind`]
//!   substitutes `?` parameters per execution with zero further parse or
//!   plan work;
//! * [`Session::query`] / [`BoundStatement::stream`] return a
//!   [`QueryStream`] of [`RowBatch`]es instead of one monolithic row
//!   vector, so large results can be paged or abandoned early;
//! * [`Session::sql`] is the one-shot path (it also accepts
//!   `CREATE TABLE .. AS SELECT ..`), served through the engine plan
//!   cache so even un-prepared repeats skip the SQL front end;
//! * [`Session::register_result`] turns any [`QueryOutput`] into a
//!   queryable in-memory table — the answer to "where are my results?":
//!   in the catalog, next to the raw files they came from.
//!
//! Sessions are cheap (an `Arc` and a batch size) and thread-safe to
//! create per connection; all heavy state lives in the shared engine.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use nodb_exec::ProjectionCursor;
use nodb_sql::Plan;
use nodb_store::RowBatch;
use nodb_types::{
    CancelScope, CancelToken, ColumnData, CountersSnapshot, Error, Result, Schema, Value,
    WorkCounters,
};

use crate::config::LoadingStrategy;
use crate::engine::{Engine, QueryOutput, QueryStats};

/// A query session over a shared engine.
///
/// ```no_run
/// use std::sync::Arc;
/// use nodb_core::{Engine, EngineConfig, Session};
/// use nodb_types::Value;
///
/// let engine = Arc::new(Engine::new(EngineConfig::default()));
/// engine.register_table("r", "/data/readings.csv")?;
/// let session = Session::new(Arc::clone(&engine));
///
/// // Prepare once, bind per exploration step.
/// let stmt = session.prepare("select sum(a1) from r where a1 > ? and a1 < ?")?;
/// for (lo, hi) in [(0, 10), (10, 20)] {
///     let out = stmt.bind(&[Value::Int(lo), Value::Int(hi)])?.execute()?;
///     println!("{:?}", out.scalar());
/// }
///
/// // Results are data: keep one and query it again.
/// let top = session.sql("select a1, a2 from r order by a2 desc limit 100")?;
/// session.register_result("top100", &top)?;
/// let n = session.sql("select count(*) from top100")?;
/// # Ok::<(), nodb_types::Error>(())
/// ```
#[derive(Clone)]
pub struct Session {
    engine: Arc<Engine>,
    batch_size: usize,
}

impl Session {
    /// A session over `engine`, with the engine's configured batch size.
    pub fn new(engine: Arc<Engine>) -> Session {
        let batch_size = engine.config().batch_size.max(1);
        Session { engine, batch_size }
    }

    /// Override the rows-per-batch of streams this session produces.
    pub fn with_batch_size(mut self, rows: usize) -> Session {
        self.batch_size = rows.max(1);
        self
    }

    /// The shared engine.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Parse and plan `sql` once, for repeated parameterised execution.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        let (plan, deps) = self.engine.plan_select_with_deps(sql)?;
        Ok(Prepared {
            engine: Arc::clone(&self.engine),
            sql: sql.to_owned(),
            state: Mutex::new(PreparedState { plan, deps }),
            batch_size: self.batch_size,
        })
    }

    /// Execute one statement (SELECT or `CREATE TABLE .. AS SELECT ..`)
    /// and materialise the full result. Repeat SELECTs hit the engine
    /// plan cache.
    pub fn sql(&self, text: &str) -> Result<QueryOutput> {
        self.engine.sql(text)
    }

    /// Execute a SELECT and stream the result batch by batch.
    pub fn query(&self, text: &str) -> Result<QueryStream> {
        let started = Instant::now();
        let before = self.engine.counters().snapshot();
        let plan = self.engine.plan_select(text)?;
        self.engine
            .stream_plan(&plan, self.batch_size, started, before)
    }

    /// Register a query result as an in-memory table. Column labels are
    /// sanitised into SQL identifiers (`sum(a1)` → `sum_a1`) and
    /// deduplicated; see [`Engine::register_result`].
    pub fn register_result(&self, name: &str, output: &QueryOutput) -> Result<()> {
        self.engine.register_result(name, output)
    }

    /// [`Session::query`] under a cancellation guard: `token` is installed
    /// as the calling thread's ambient [`CancelToken`] for the duration of
    /// planning and execution, so cancelling it (or its deadline firing)
    /// aborts the query mid-pipeline with [`Error::Cancelled`] /
    /// [`Error::Timeout`]. If the engine configures
    /// [`default_query_deadline_ms`](crate::EngineConfig::default_query_deadline_ms)
    /// and the token carries no deadline, the default is applied.
    ///
    /// A cancelled cold load leaves the catalog, adaptive store and
    /// positional map either untouched or in a valid loaded state — the
    /// next (uncancelled) query behaves exactly as if the cancelled one
    /// had never run.
    pub fn query_with_guard(&self, text: &str, token: &CancelToken) -> Result<QueryStream> {
        run_guarded(&self.engine, token, || self.query(text))
    }

    /// [`Session::sql`] under a cancellation guard; see
    /// [`Session::query_with_guard`] for the guard semantics.
    pub fn sql_with_guard(&self, text: &str, token: &CancelToken) -> Result<QueryOutput> {
        run_guarded(&self.engine, token, || self.sql(text))
    }
}

/// Run `f` with `token` installed as the thread's ambient cancel token
/// and the engine's per-query memory guard (if metering is configured)
/// as the ambient allocation meter, applying the engine's default
/// deadline (if any, and if the token has none) and bumping the
/// cancelled/timed-out/shed counters on a tripped exit.
///
/// This is also a panic-isolation boundary: a panic anywhere under `f`
/// (planner, loader, operators) is caught and converted into a typed
/// [`Error::Internal`], so one buggy query cannot take an embedding
/// process — or the server's worker pool — down with it. Unwinding drops
/// the scopes and the memory guard, returning the query's reservation to
/// the engine pool.
fn run_guarded<T>(
    engine: &Engine,
    token: &CancelToken,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    if let Some(ms) = engine.config().default_query_deadline_ms {
        token.set_deadline_if_unset(Instant::now() + Duration::from_millis(ms));
    }
    let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _scope = CancelScope::enter(token.clone());
        let _mem = engine.memory_guard().map(nodb_types::MemoryScope::enter);
        f()
    }))
    .unwrap_or_else(|payload| {
        engine.counters().add_panic_contained();
        Err(Error::from_panic("query execution", payload))
    });
    match &out {
        Err(Error::Cancelled(_)) => engine.counters().add_query_cancelled(),
        Err(Error::Timeout(_)) => engine.counters().add_query_timed_out(),
        Err(Error::ResourceExhausted(_)) => engine.counters().add_query_shed(),
        _ => {}
    }
    out
}

struct PreparedState {
    plan: Arc<Plan>,
    /// `(table, schema epoch)` the plan was resolved against.
    deps: Vec<(String, u64)>,
}

/// A statement parsed and planned once.
///
/// Binding substitutes `?` parameters into the cached plan — no lexing,
/// parsing or name resolution happens again. If a referenced raw file
/// changes on disk (schema re-inference), the statement transparently
/// re-plans itself on next use.
pub struct Prepared {
    engine: Arc<Engine>,
    sql: String,
    state: Mutex<PreparedState>,
    batch_size: usize,
}

impl Prepared {
    /// Number of `?` parameters the statement declares.
    pub fn n_params(&self) -> usize {
        self.state.lock().plan.n_params
    }

    /// The statement text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// The cached plan, re-planned only if a dependency's schema changed.
    fn current_plan(&self) -> Result<Arc<Plan>> {
        let mut state = self.state.lock();
        let mut fresh = true;
        for (table, epoch) in &state.deps {
            if self.engine.ensured_epoch(table)? != *epoch {
                fresh = false;
                break;
            }
        }
        if !fresh {
            let (plan, deps) = self.engine.plan_select_with_deps(&self.sql)?;
            *state = PreparedState { plan, deps };
        }
        Ok(Arc::clone(&state.plan))
    }

    /// Bind parameter values, producing an executable statement. `params`
    /// must match [`Prepared::n_params`] in count and each value must be
    /// type-compatible with its slot.
    pub fn bind(&self, params: &[Value]) -> Result<BoundStatement> {
        let plan = self.current_plan()?;
        let plan = if plan.n_params == 0 && params.is_empty() {
            plan
        } else {
            Arc::new(plan.bind(params)?)
        };
        Ok(BoundStatement {
            engine: Arc::clone(&self.engine),
            plan,
            batch_size: self.batch_size,
        })
    }

    /// Bind and materialise in one call.
    pub fn execute(&self, params: &[Value]) -> Result<QueryOutput> {
        self.bind(params)?.execute()
    }

    /// Bind and stream in one call.
    pub fn stream(&self, params: &[Value]) -> Result<QueryStream> {
        self.bind(params)?.stream()
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("sql", &self.sql)
            .field("n_params", &self.n_params())
            .finish_non_exhaustive()
    }
}

/// A plan with every parameter bound: ready to execute, repeatedly.
pub struct BoundStatement {
    engine: Arc<Engine>,
    plan: Arc<Plan>,
    batch_size: usize,
}

impl std::fmt::Debug for BoundStatement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundStatement")
            .field("columns", &self.plan.output_names)
            .finish_non_exhaustive()
    }
}

impl BoundStatement {
    /// Execute and materialise the full result.
    pub fn execute(&self) -> Result<QueryOutput> {
        self.stream()?.collect_output()
    }

    /// Execute, streaming the result batch by batch.
    pub fn stream(&self) -> Result<QueryStream> {
        let started = Instant::now();
        let before = self.engine.counters().snapshot();
        self.engine
            .stream_plan(&self.plan, self.batch_size, started, before)
    }

    /// [`BoundStatement::stream`] under a cancellation guard; see
    /// [`Session::query_with_guard`] for the guard semantics.
    pub fn stream_with_guard(&self, token: &CancelToken) -> Result<QueryStream> {
        run_guarded(&self.engine, token, || self.stream())
    }

    /// [`BoundStatement::execute`] under a cancellation guard; see
    /// [`Session::query_with_guard`] for the guard semantics.
    pub fn execute_with_guard(&self, token: &CancelToken) -> Result<QueryOutput> {
        run_guarded(&self.engine, token, || self.execute())
    }

    /// Output column labels.
    pub fn columns(&self) -> &[String] {
        &self.plan.output_names
    }
}

/// What a query execution yields before projection finishes.
pub(crate) enum StreamBody {
    /// Fully computed rows (aggregates, grouped results): batching just
    /// slices them.
    Rows {
        /// The rows, consumed front to back.
        rows: Vec<Vec<Value>>,
        /// Next row to emit.
        cursor: usize,
    },
    /// A lazy projection: rows are produced batch by batch from the
    /// materialised columns.
    Cursor(ProjectionCursor<BTreeMap<usize, Arc<ColumnData>>>),
}

/// An executing query, consumed as a sequence of [`RowBatch`]es.
///
/// Obtained from [`Session::query`], [`Prepared::stream`] or
/// [`BoundStatement::stream`]. Dropping the stream abandons the rest of
/// the result with no further work. The stream is fed by the engine's
/// morsel-driven parallel pipeline: aggregate bodies arrive pre-merged
/// from per-worker partials, and scalar bodies project lazily from a
/// selection vector built in parallel — batching never re-serialises the
/// work that produced the rows.
pub struct QueryStream {
    columns: Vec<String>,
    schema: Schema,
    batch_size: usize,
    body: StreamBody,
    started: Instant,
    before: CountersSnapshot,
    counters: Arc<WorkCounters>,
    strategy: LoadingStrategy,
    /// Ambient profile sink captured at construction (None when
    /// profiling is not armed), so [`QueryStream::stats`] can report the
    /// phase breakdown even after the arming scope has been left.
    profile: Option<nodb_types::ProfileHandle>,
}

impl std::fmt::Debug for QueryStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryStream")
            .field("columns", &self.columns)
            .field("rows_remaining", &self.rows_remaining())
            .finish_non_exhaustive()
    }
}

impl QueryStream {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        columns: Vec<String>,
        schema: Schema,
        batch_size: usize,
        body: StreamBody,
        started: Instant,
        before: CountersSnapshot,
        counters: Arc<WorkCounters>,
        strategy: LoadingStrategy,
    ) -> QueryStream {
        QueryStream {
            columns,
            schema,
            batch_size: batch_size.max(1),
            body,
            started,
            before,
            counters,
            strategy,
            profile: nodb_types::profile::current(),
        }
    }

    /// Output column labels (as written in the query).
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Schema of emitted batches (labels sanitised into identifiers).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows still to be emitted.
    pub fn rows_remaining(&self) -> usize {
        match &self.body {
            StreamBody::Rows { rows, cursor } => rows.len() - cursor,
            StreamBody::Cursor(c) => c.remaining(),
        }
    }

    /// Produce the next batch, or `None` when the result is exhausted.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch>> {
        let batch = self.batch_size;
        match &mut self.body {
            StreamBody::Rows { rows, cursor } => {
                if *cursor >= rows.len() {
                    return Ok(None);
                }
                let hi = (*cursor + batch).min(rows.len());
                let out: Vec<Vec<Value>> =
                    rows[*cursor..hi].iter_mut().map(std::mem::take).collect();
                *cursor = hi;
                Ok(Some(RowBatch {
                    schema: self.schema.clone(),
                    rows: out,
                }))
            }
            StreamBody::Cursor(c) => Ok(c.next_rows(batch)?.map(|rows| RowBatch {
                schema: self.schema.clone(),
                rows,
            })),
        }
    }

    /// Statistics accumulated so far (work deltas since the stream began).
    pub fn stats(&self) -> QueryStats {
        QueryStats {
            elapsed: self.started.elapsed(),
            work: self.counters.snapshot().since(&self.before),
            strategy: self.strategy,
            profile: self
                .profile
                .as_ref()
                .map(|h| h.snapshot())
                .unwrap_or_default(),
        }
    }

    /// Drain every remaining batch into a [`QueryOutput`] (rows already
    /// taken via [`QueryStream::next_batch`] are not replayed).
    pub fn collect_output(mut self) -> Result<QueryOutput> {
        let mut rows = Vec::with_capacity(self.rows_remaining());
        match &mut self.body {
            StreamBody::Rows { rows: all, cursor } => {
                rows.extend(all[*cursor..].iter_mut().map(std::mem::take));
                *cursor = all.len();
            }
            StreamBody::Cursor(c) => rows = c.drain_all()?,
        }
        Ok(QueryOutput {
            columns: self.columns.clone(),
            rows,
            stats: self.stats(),
        })
    }
}

impl Iterator for QueryStream {
    type Item = Result<RowBatch>;

    fn next(&mut self) -> Option<Result<RowBatch>> {
        self.next_batch().transpose()
    }
}

/// Best-effort output schema for stream batches: column types derived
/// from the plan, labels sanitised into unique identifiers.
pub(crate) fn output_schema(plan: &Plan) -> Schema {
    let names = unique_identifiers(&plan.output_names);
    let fields = plan
        .output
        .iter()
        .zip(names)
        .map(|(o, name)| {
            let dt = match o {
                nodb_sql::OutputExpr::Scalar(e) => expr_type(e, &plan.combined_schema),
                nodb_sql::OutputExpr::Agg(a) => agg_type(a, &plan.combined_schema),
            };
            nodb_types::Field::new(name, dt)
        })
        .collect();
    Schema::new(fields).expect("names uniquified above")
}

fn expr_type(e: &nodb_exec::Expr, schema: &Schema) -> nodb_types::DataType {
    use nodb_types::DataType;
    match e {
        nodb_exec::Expr::Col(c) => schema
            .field(*c)
            .map(|f| f.data_type)
            .unwrap_or(DataType::Str),
        nodb_exec::Expr::Lit(v) => v.data_type().unwrap_or(DataType::Int64),
        nodb_exec::Expr::Binary { left, right, .. } => {
            expr_type(left, schema).unify(expr_type(right, schema))
        }
    }
}

fn agg_type(a: &nodb_exec::AggSpec, schema: &Schema) -> nodb_types::DataType {
    use nodb_exec::AggFunc;
    use nodb_types::DataType;
    match a.func {
        AggFunc::Count | AggFunc::CountStar => DataType::Int64,
        AggFunc::Avg => DataType::Float64,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => a
            .expr
            .as_ref()
            .map(|e| expr_type(e, schema))
            .unwrap_or(DataType::Int64),
    }
}

/// Sanitise a list of output labels into unique identifiers: each label
/// is squashed to lowercase alphanumerics and underscores, and
/// collisions get `_2`, `_3`, ... suffixes. Shared by stream schemas,
/// result-table registration and the wire server's cursor descriptions
/// so they can never disagree on a column's name.
pub fn unique_identifiers(labels: &[String]) -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(labels.len());
    for (i, raw) in labels.iter().enumerate() {
        let base = sanitize_identifier(raw, i);
        let mut name = base.clone();
        let mut suffix = 2;
        while names.iter().any(|n| n == &name) {
            name = format!("{base}_{suffix}");
            suffix += 1;
        }
        names.push(name);
    }
    names
}

/// Squash an arbitrary output label into a SQL identifier: alphanumerics
/// keep (lowercased), runs of anything else become one `_`, and a name
/// that ends up empty or digit-led gets a positional fallback.
pub(crate) fn sanitize_identifier(raw: &str, ordinal: usize) -> String {
    let mut s = String::with_capacity(raw.len());
    let mut prev_underscore = false;
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() {
            s.push(c.to_ascii_lowercase());
            prev_underscore = false;
        } else if !prev_underscore {
            s.push('_');
            prev_underscore = true;
        }
    }
    let trimmed = s.trim_matches('_');
    if trimmed.is_empty() {
        format!("c{}", ordinal + 1)
    } else if trimmed.starts_with(|c: char| c.is_ascii_digit()) {
        format!("c{}_{}", ordinal + 1, trimmed)
    } else {
        trimmed.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_labels_to_identifiers() {
        assert_eq!(sanitize_identifier("sum(a1)", 0), "sum_a1");
        assert_eq!(sanitize_identifier("count(*)", 1), "count");
        assert_eq!(sanitize_identifier("a2 + a3", 2), "a2_a3");
        assert_eq!(sanitize_identifier("r.a1", 0), "r_a1");
        assert_eq!(sanitize_identifier("??", 4), "c5");
        assert_eq!(sanitize_identifier("2x", 0), "c1_2x");
        assert_eq!(sanitize_identifier("Total", 0), "total");
    }
}
