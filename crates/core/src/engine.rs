//! The NoDB engine.
//!
//! "All you need to do to use it, is point to your data and you can start
//! querying immediately with SQL queries." [`Engine::register_table`] links
//! a raw CSV file under a name; [`Engine::sql`] parses, plans and runs a
//! query, letting the configured [`LoadingStrategy`]
//! fetch whatever the query needs from the raw files on the fly.
//!
//! [`LoadingStrategy`]: crate::LoadingStrategy

use std::collections::{BTreeMap, HashMap};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

use nodb_exec::{
    accumulate_into, aggregate, build_cold_join_tables, cold_join_build_morsel,
    cold_join_partitions, cold_project_morsel, filter_positions, finish_group_partials,
    fused_filter_aggregate, group_accumulate_range, group_aggregate, hash_join_positions,
    merge_group_partials, parallel_filter_aggregate, parallel_filter_positions,
    parallel_group_aggregate, parallel_hash_join_positions, sort_positions, stitch_cold_projection,
    Accumulator, AggSpec, ColumnsScan, Expr, GroupPartial, OrdinalCols, ProjectPartial,
    ProjectionCursor,
};
use nodb_sql::{OutputExpr, Plan, Statement};
use nodb_store::persist;
use nodb_types::profile::{self, CacheOutcome, Phase, ProfileScope, ProfileSink, QueryProfile};
use nodb_types::resource::{self, MemoryGuard, MemoryPool, MemoryScope};
use nodb_types::{
    ColumnData, Conjunction, CountersSnapshot, DataType, Error, Field, Result, Schema, Value,
    WorkCounters,
};

use crate::catalog::{Catalog, TableEntry};
use crate::config::{EngineConfig, KernelStrategy, LoadingStrategy};
use crate::plan_cache::{normalize_sql, PlanCache, PlanDeps};
use crate::policy::{materialize, Materialized};
use crate::result_cache::{
    family_fingerprint, plan_fingerprint, rows_bytes, subsumable_constraint, RangeConstraint,
    ResultCache,
};
use crate::session::{output_schema, unique_identifiers, QueryStream, Session, StreamBody};

/// Result of one SQL query.
#[derive(Debug)]
pub struct QueryOutput {
    /// Output column labels.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Execution statistics.
    pub stats: QueryStats,
}

impl QueryOutput {
    /// Convenience: the single value of a single-row single-column result
    /// (common for aggregates).
    pub fn scalar(&self) -> Option<&Value> {
        match (self.rows.len(), self.rows.first()) {
            (1, Some(r)) if r.len() == 1 => r.first(),
            _ => None,
        }
    }

    /// Write the result as CSV (header row + data rows). Fields containing
    /// the delimiter, quotes or newlines are quoted RFC-4180 style, so the
    /// output is itself registrable as a nodb table — results can feed the
    /// next exploration step as new raw files.
    pub fn write_csv(&self, w: &mut impl std::io::Write) -> Result<()> {
        fn field(s: &str) -> std::borrow::Cow<'_, str> {
            if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
                std::borrow::Cow::Owned(format!("\"{}\"", s.replace('"', "\"\"")))
            } else {
                std::borrow::Cow::Borrowed(s)
            }
        }
        let header: Vec<String> = self.columns.iter().map(|c| field(c).into_owned()).collect();
        writeln!(w, "{}", header.join(","))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    Value::Str(s) => field(s).into_owned(),
                    other => other.to_string(),
                })
                .collect();
            writeln!(w, "{}", cells.join(","))?;
        }
        Ok(())
    }

    /// [`QueryOutput::write_csv`] to a file path.
    pub fn save_csv(&self, path: &Path) -> Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        self.write_csv(&mut f)?;
        use std::io::Write as _;
        f.flush()?;
        Ok(())
    }
}

/// Per-query statistics.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Wall-clock time of the whole query (planning + loading + execution).
    pub elapsed: Duration,
    /// Work-counter deltas attributable to this query.
    pub work: CountersSnapshot,
    /// The loading strategy that served it.
    pub strategy: LoadingStrategy,
    /// Per-phase execution profile. Empty (all zeros) unless a
    /// [`ProfileScope`] was ambient while the query ran — `EXPLAIN
    /// ANALYZE` and the server's slow-query log arm one; plain queries
    /// pay a single thread-local read per phase probe and record
    /// nothing.
    pub profile: QueryProfile,
}

/// Diagnostics about a table's derived state.
#[derive(Debug, Clone)]
pub struct TableInfo {
    /// Inferred schema (None before first touch).
    pub schema: Option<Schema>,
    /// Fully loaded column ordinals.
    pub loaded_columns: Vec<usize>,
    /// Number of cached fragments.
    pub fragments: usize,
    /// Adaptive-store bytes in memory.
    pub store_bytes: usize,
    /// Positional-map bytes in memory.
    pub posmap_bytes: usize,
    /// Number of file segments (1 = unsplit original).
    pub segments: usize,
    /// Store hit rate reported by the workload monitor.
    pub hit_rate: f64,
}

/// Outcome of a result-cache consultation: a fully formed stream served
/// from cached rows, or a miss carrying the schema epochs captured before
/// execution (the deps any installed entry must be tagged with).
enum CacheLookup {
    Served(Box<QueryStream>),
    Miss(PlanDeps),
}

/// The engine: a catalog of linked raw files plus a loading policy.
pub struct Engine {
    catalog: RwLock<Catalog>,
    cfg: EngineConfig,
    counters: Arc<WorkCounters>,
    seq: AtomicU64,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    /// Engine-wide reservation pool for query-execution state; every
    /// query's [`MemoryGuard`] reserves from it. Uncapped (but still
    /// metering peaks) unless `engine_mem_bytes` is set.
    mem_pool: MemoryPool,
    /// One-shot latch for wiring the degradation-ladder reclaimer, which
    /// needs a `Weak<Engine>` and so cannot be built in [`Engine::new`].
    reclaimer_installed: std::sync::atomic::AtomicBool,
}

impl Engine {
    /// Engine with the given configuration. The single `threads` knob is
    /// propagated into the tokenizer options here, so `cfg.threads`
    /// governs every parallel stage (phase-1 scanning, morsel pipelines,
    /// parallel kernels) without touching `cfg.csv`.
    pub fn new(mut cfg: EngineConfig) -> Engine {
        // Arm failpoints from NODB_FAILPOINTS once per process so fault
        // injection works for any embedding without extra wiring. Once,
        // because re-arming would reset per-site hit counts.
        static FAILPOINTS_ENV: std::sync::Once = std::sync::Once::new();
        FAILPOINTS_ENV.call_once(nodb_types::failpoints::init_from_env);
        cfg.threads = cfg.threads.max(1);
        cfg.csv.threads = cfg.threads;
        cfg.morsel_rows = cfg.morsel_rows.max(1);
        let plan_cache = PlanCache::new(cfg.plan_cache_capacity);
        let result_cache = ResultCache::new(cfg.result_cache_bytes, cfg.result_cache_max_entries);
        let mem_pool = MemoryPool::new(cfg.engine_mem_bytes);
        Engine {
            catalog: RwLock::new(Catalog::new()),
            cfg,
            counters: Arc::new(WorkCounters::new()),
            seq: AtomicU64::new(0),
            plan_cache,
            result_cache,
            mem_pool,
            reclaimer_installed: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// The engine-wide memory reservation pool (diagnostics: reserved
    /// bytes, peak, cap).
    pub fn memory_pool(&self) -> &MemoryPool {
        &self.mem_pool
    }

    /// A fresh per-query allocation meter, or `None` when neither
    /// `query_mem_bytes` nor `engine_mem_bytes` is configured (the
    /// unmetered default costs nothing at charge sites).
    pub fn memory_guard(&self) -> Option<MemoryGuard> {
        if self.cfg.query_mem_bytes.is_none() && self.cfg.engine_mem_bytes.is_none() {
            return None;
        }
        Some(MemoryGuard::new(
            self.cfg.query_mem_bytes,
            Some(self.mem_pool.clone()),
        ))
    }

    /// Wire the pool's degradation ladder to this engine (idempotent).
    /// Needs an `Arc` receiver for the `Weak` the reclaimer holds, so it
    /// runs on first session creation rather than in [`Engine::new`]; an
    /// engine used without an `Arc` simply sheds without the ladder.
    fn ensure_reclaimer(self: &Arc<Self>) {
        use std::sync::atomic::Ordering as O;
        if self.reclaimer_installed.swap(true, O::SeqCst) {
            return;
        }
        let weak = Arc::downgrade(self);
        self.mem_pool.set_reclaimer(Box::new(move |need| {
            weak.upgrade().map(|e| e.release_memory(need)).unwrap_or(0)
        }));
    }

    /// The graceful-degradation ladder, run by the memory pool before any
    /// query is shed (and on demand, e.g. by an operator): free at least
    /// `target_bytes` of *cache* memory — first the result cache, then
    /// the adaptive store's least-recently-used items table by table —
    /// and return the bytes actually freed. Resident result tables are
    /// never touched (they have no backing file to reload from).
    ///
    /// Entry locks are only *tried* here, never waited on: the ladder
    /// runs on whatever thread an over-budget charge happens to occur,
    /// and the fused cold paths charge from scan workers while the
    /// table's entry lock is held by their driver (or by this very
    /// thread, on the serial path). Blocking on `write()` for that table
    /// would deadlock the scan against its own reclaim — a locked entry
    /// is in active use anyway, so its columns are the wrong ones to
    /// evict.
    pub fn release_memory(&self, target_bytes: usize) -> usize {
        let mut freed = self.result_cache.bytes_used();
        self.result_cache.clear();
        if freed >= target_bytes {
            return freed;
        }
        for name in self.table_names() {
            let Ok(entry) = self.catalog.read().get(&name) else {
                continue;
            };
            let Some(mut e) = entry.try_write() else {
                continue;
            };
            if e.resident {
                continue;
            }
            let used = e.store.bytes_used();
            let still_needed = target_bytes - freed;
            let goal = used.saturating_sub(still_needed);
            freed += e.store.evict_to_budget(goal, &self.counters);
            if freed >= target_bytes {
                break;
            }
        }
        freed
    }

    /// The engine result cache (diagnostics: entry count, bytes, clear).
    pub fn result_cache(&self) -> &ResultCache {
        &self.result_cache
    }

    /// A [`Session`] over this engine (sessions are cheap; make one per
    /// connection or exploration thread).
    pub fn session(self: &Arc<Self>) -> Session {
        self.ensure_reclaimer();
        Session::new(Arc::clone(self))
    }

    /// Engine with default configuration (adaptive column loads).
    pub fn with_defaults() -> Engine {
        Engine::new(EngineConfig::default())
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Shared work counters (benchmarks snapshot these around queries).
    pub fn counters(&self) -> &WorkCounters {
        &self.counters
    }

    /// Link a raw CSV file as a queryable table. Nothing is read yet.
    pub fn register_table(&self, name: &str, path: impl Into<PathBuf>) -> Result<()> {
        self.catalog
            .write()
            .register(name, path, self.cfg.store_dir.as_deref())
    }

    /// Remove a table link and its derived state — including any split
    /// segments persisted under the store directory, so re-registering a
    /// changed file under the same name can never resurrect stale
    /// columns.
    pub fn unregister_table(&self, name: &str) -> bool {
        let removed = self.catalog.write().remove(name);
        match removed {
            Some(entry) => {
                entry.read().drop_derived_files();
                // The epoch check would catch these lazily (the dependency
                // resolves to no epoch at all); purge eagerly so the bytes
                // come back now and a same-name re-registration starts
                // from a provably empty slate.
                self.result_cache.purge_table(name);
                true
            }
            None => false,
        }
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<String> {
        self.catalog.read().table_names()
    }

    /// Diagnostics for one table.
    pub fn table_info(&self, name: &str) -> Result<TableInfo> {
        let entry = self.catalog.read().get(name)?;
        let e = entry.read();
        Ok(TableInfo {
            schema: e.schema_info.as_ref().map(|s| s.schema.clone()),
            loaded_columns: e.store.full_columns(),
            fragments: e.store.fragment_ids().len(),
            store_bytes: e.store.bytes_used(),
            posmap_bytes: e.posmap.approx_bytes(),
            segments: e.segments.as_ref().map(|s| s.segments().len()).unwrap_or(1),
            hit_rate: e.monitor.hit_rate(),
        })
    }

    /// Persist every fully loaded column of `name` as binary files in
    /// `dir` (used by restarts and the paper's cold-run experiments).
    pub fn persist_table(&self, name: &str, dir: &Path) -> Result<usize> {
        let entry = self.catalog.read().get(name)?;
        let e = entry.read();
        std::fs::create_dir_all(dir)?;
        let mut written = 0;
        for c in e.store.full_columns() {
            let col = e.store.peek_full(c).expect("listed");
            persist::write_column(&dir.join(format!("col{c}.bin")), col, &self.counters)?;
            written += 1;
        }
        Ok(written)
    }

    /// Restore previously persisted columns of `name` from `dir` into the
    /// adaptive store (the "cold start" path: binary deserialisation
    /// instead of CSV re-parsing).
    pub fn restore_table(&self, name: &str, dir: &Path) -> Result<usize> {
        let entry = self.catalog.read().get(name)?;
        let mut e = entry.write();
        e.ensure_current(&self.cfg.csv, self.cfg.infer_sample_rows, &self.counters)?;
        let ncols = e.schema()?.len();
        let now = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut restored = 0;
        for c in 0..ncols {
            let p = dir.join(format!("col{c}.bin"));
            if p.exists() {
                let col = persist::read_column(&p, &self.counters)?;
                e.store.insert_full(c, col, now);
                restored += 1;
            }
        }
        Ok(restored)
    }

    /// EXPLAIN: parse and plan the query, then describe the plan plus what
    /// the adaptive loader would have to fetch for it right now — without
    /// executing anything or touching the raw files beyond schema
    /// inference.
    pub fn explain(&self, text: &str) -> Result<String> {
        let ast = nodb_sql::parse(text)?;
        let mut schemas: HashMap<String, Schema> = HashMap::new();
        let mut table_names = vec![ast.table.clone()];
        if let Some(j) = &ast.join {
            table_names.push(j.table.clone());
        }
        for t in &table_names {
            let entry = self.catalog.read().get(t)?;
            let mut e = entry.write();
            e.ensure_current(&self.cfg.csv, self.cfg.infer_sample_rows, &self.counters)?;
            schemas.insert(t.to_ascii_lowercase(), e.schema()?.clone());
        }
        let plan = nodb_sql::plan(&ast, &schemas)?;
        let mut out = plan.render(self.cfg.strategy.label(), self.cfg.kernel.label());
        let (needed_l, needed_r) = plan.referenced_per_table();
        for (t, needed) in [
            (&plan.table, needed_l),
            (
                &plan
                    .join
                    .as_ref()
                    .map(|j| j.table.clone())
                    .unwrap_or_default(),
                needed_r,
            ),
        ] {
            if t.is_empty() {
                continue;
            }
            let entry = self.catalog.read().get(t)?;
            let e = entry.read();
            let missing = e.store.missing_full(&needed);
            out.push_str(&format!(
                "-- {}: {} of {} referenced columns loaded; {} fragments cached{}\n",
                t,
                needed.len() - missing.len(),
                needed.len(),
                e.store.fragment_ids().len(),
                if missing.is_empty() {
                    "; no file trip needed for full-column strategies".to_owned()
                } else {
                    format!("; missing columns {missing:?} would load from file")
                }
            ));
        }
        Ok(out)
    }

    /// `EXPLAIN ANALYZE`: execute the query under a fresh profile sink and
    /// render the same per-step listing as [`Engine::explain`], followed by
    /// the measured annotations — rows produced, wall clock, result-cache
    /// outcome, one line per phase that ran (exclusive self-time on the
    /// coordinating thread, so the phase times are disjoint and their sum
    /// is bounded by the wall clock), and the parallel-pipeline aggregates
    /// (morsels, steals, rows, bytes) recorded by the workers.
    pub fn explain_analyze(&self, text: &str) -> Result<String> {
        let started = Instant::now();
        let before = self.counters.snapshot();
        let sink = ProfileSink::handle();
        let (plan, out) = {
            let _scope = ProfileScope::enter(Arc::clone(&sink));
            let plan = self.plan_select(text)?;
            let out = self
                .stream_plan(&plan, usize::MAX, started, before)?
                .collect_output()?;
            (plan, out)
        };
        let elapsed = started.elapsed();
        let prof = sink.snapshot();
        let mut s = plan.render(self.cfg.strategy.label(), self.cfg.kernel.label());
        s.push_str(&format!(
            "-- analyze: rows={} elapsed={} cache={}\n",
            out.rows.len(),
            profile::fmt_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64),
            prof.cache.label(),
        ));
        for (phase, ns, hits) in prof.phases() {
            s.push_str(&format!(
                "-- phase {}: {} ({} call{})\n",
                phase.label(),
                profile::fmt_ns(ns),
                hits,
                if hits == 1 { "" } else { "s" },
            ));
        }
        s.push_str(&format!(
            "-- workers: morsels={} steals={} rows={} bytes={}\n",
            prof.morsels, prof.steals, prof.rows, prof.bytes,
        ));
        s.push_str(&format!(
            "-- phase total: {} of {} wall\n",
            profile::fmt_ns(prof.total_phase_ns()),
            profile::fmt_ns(elapsed.as_nanos().min(u64::MAX as u128) as u64),
        ));
        Ok(s)
    }

    /// `EXPLAIN [ANALYZE] <select>` as a [`QueryOutput`]: one `plan`
    /// column, one row per listing line — the shape lets EXPLAIN travel
    /// through every result path (sessions, the wire server, CSV export)
    /// unchanged. Plain EXPLAIN never executes; ANALYZE runs the query via
    /// [`Engine::explain_analyze`] and reports its measured profile.
    fn explain_output(
        &self,
        text: &str,
        started: Instant,
        before: CountersSnapshot,
    ) -> Result<QueryOutput> {
        let rest = after_keyword(text);
        let (analyze, body) = if leading_keyword(rest).eq_ignore_ascii_case("analyze") {
            (true, after_keyword(rest))
        } else {
            (false, rest)
        };
        if leading_keyword(body).is_empty() {
            return Err(Error::Plan("EXPLAIN needs a statement to describe".into()));
        }
        let listing = if analyze {
            self.explain_analyze(body)?
        } else {
            self.explain(body)?
        };
        let rows: Vec<Vec<Value>> = listing
            .lines()
            .map(|l| vec![Value::Str(l.to_owned())])
            .collect();
        Ok(QueryOutput {
            columns: vec!["plan".to_owned()],
            rows,
            stats: QueryStats {
                elapsed: started.elapsed(),
                work: self.counters.snapshot().since(&before),
                strategy: self.cfg.strategy,
                profile: QueryProfile::default(),
            },
        })
    }

    /// Parse, plan and execute one SQL statement — a SELECT,
    /// `CREATE TABLE <t> AS SELECT ...` (which materialises the result as
    /// an in-memory table and also returns it), or `EXPLAIN [ANALYZE]
    /// <select>` (which returns the plan listing as rows).
    ///
    /// Repeat SELECTs are served from the engine plan cache (keyed on
    /// normalized text), skipping the lexer/parser/planner entirely; see
    /// the `plan_cache_hits`/`plan_cache_misses` work counters. For
    /// parameterised repetition and streaming results, use
    /// [`Session::prepare`](crate::Session::prepare).
    pub fn sql(&self, text: &str) -> Result<QueryOutput> {
        let started = Instant::now();
        let before = self.counters.snapshot();
        let kw = leading_keyword(text);
        if kw.eq_ignore_ascii_case("create") {
            let stmt = nodb_sql::parse_statement(text)?;
            return match stmt {
                Statement::CreateTableAs { name, query } => {
                    self.create_table_as(&name, &query, started, before)
                }
                Statement::Select(_) => unreachable!("leading keyword was CREATE"),
            };
        }
        if kw.eq_ignore_ascii_case("explain") {
            return self.explain_output(text, started, before);
        }
        let plan = self.plan_select(text)?;
        self.stream_plan(&plan, usize::MAX, started, before)?
            .collect_output()
    }

    /// `CREATE TABLE <name> AS SELECT ...`: run the defining query and
    /// register its result columns directly in the catalog (no CSV
    /// round-trip). Returns the materialised result. The defining SELECT
    /// is planned from its AST (DDL is rare; it does not go through the
    /// plan cache).
    fn create_table_as(
        &self,
        name: &str,
        query: &nodb_sql::AstQuery,
        started: Instant,
        before: CountersSnapshot,
    ) -> Result<QueryOutput> {
        let (plan, _deps) = self.plan_query(query)?;
        let out = self
            .stream_plan(&plan, usize::MAX, started, before)?
            .collect_output()?;
        self.register_result(name, &out)?;
        Ok(out)
    }

    /// Register a query result as an in-memory table: its columns go
    /// straight into the catalog's adaptive store, fully loaded, with no
    /// raw file behind them. Column labels are sanitised into SQL
    /// identifiers (`sum(a1)` → `sum_a1`, `count(*)` → `count`) and
    /// deduplicated with `_2`, `_3`, ... suffixes. Re-registering over an
    /// existing *result* table replaces it; shadowing a file-backed table
    /// is an error.
    pub fn register_result(&self, name: &str, output: &QueryOutput) -> Result<()> {
        let ncols = output.columns.len();
        let types = result_column_types(ncols, &output.rows);
        let fields: Vec<Field> = unique_identifiers(&output.columns)
            .into_iter()
            .zip(&types)
            .map(|(n, &t)| Field::new(n, t))
            .collect();
        let schema = Schema::new(fields)?;
        let mut columns = Vec::with_capacity(ncols);
        for (c, &ty) in types.iter().enumerate() {
            let mut col = ColumnData::with_capacity(ty, output.rows.len());
            for row in &output.rows {
                let v = row.get(c).cloned().unwrap_or(Value::Null);
                col.push(coerce(v, ty))?;
            }
            columns.push(col);
        }
        self.catalog
            .write()
            .register_result(name, schema, columns)?;
        // Replacing a result table mints a fresh globally-unique epoch, so
        // dependent cache entries are already unservable; drop them now
        // rather than on their next (failing) validation.
        self.result_cache.purge_table(name);
        Ok(())
    }

    /// Resolve a SELECT to a plan, via the plan cache. A hit re-uses the
    /// cached plan with zero parse/plan work (after confirming, per
    /// table, that the schema epoch is unchanged — which also performs
    /// the usual file-edit fingerprint check).
    pub(crate) fn plan_select(&self, text: &str) -> Result<Arc<Plan>> {
        Ok(self.plan_select_with_deps(text)?.0)
    }

    /// [`Engine::plan_select`] plus the `(table, schema epoch)` set the
    /// plan depends on — what [`Prepared`](crate::Prepared) revalidates.
    /// On a hit the deps are the cache entry's own (just confirmed
    /// current); on a miss they are captured at the same instant as the
    /// schemas the plan resolves against, so a concurrent file edit can
    /// never tag a stale plan with a fresh epoch.
    pub(crate) fn plan_select_with_deps(&self, text: &str) -> Result<(Arc<Plan>, PlanDeps)> {
        let _p = profile::phase(Phase::Plan);
        let key = normalize_sql(text);
        if let Some(hit) = self.plan_cache.get(&key, |t| self.ensured_epoch(t).ok()) {
            self.counters.add_plan_cache_hit();
            return Ok(hit);
        }
        self.counters.add_plan_cache_miss();
        // Parse first: we need the table names to ensure schemas exist
        // before planning ("schema detection happens on first query").
        let ast = nodb_sql::parse(text)?;
        let (plan, deps) = self.plan_query(&ast)?;
        self.plan_cache.insert(key, Arc::clone(&plan), deps.clone());
        Ok((plan, deps))
    }

    /// Plan a parsed query: ensure every referenced table's schema is
    /// current, then resolve names against that snapshot. The returned
    /// deps carry the epochs read in the same critical section as each
    /// schema.
    fn plan_query(&self, ast: &nodb_sql::AstQuery) -> Result<(Arc<Plan>, PlanDeps)> {
        let mut schemas: HashMap<String, Schema> = HashMap::new();
        let mut deps = Vec::new();
        for t in tables_of(ast) {
            let entry = self.catalog.read().get(&t)?;
            let mut e = entry.write();
            e.ensure_current(&self.cfg.csv, self.cfg.infer_sample_rows, &self.counters)?;
            deps.push((t.to_ascii_lowercase(), e.schema_epoch));
            schemas.insert(t.to_ascii_lowercase(), e.schema()?.clone());
        }
        let plan = Arc::new(nodb_sql::plan(ast, &schemas)?);
        Ok((plan, deps))
    }

    /// Current schema epoch of a table, after running the fingerprint
    /// check (so an on-disk edit bumps the epoch before we report it).
    pub(crate) fn ensured_epoch(&self, table: &str) -> Result<u64> {
        let entry = self.catalog.read().get(table)?;
        let mut e = entry.write();
        e.ensure_current(&self.cfg.csv, self.cfg.infer_sample_rows, &self.counters)?;
        Ok(e.schema_epoch)
    }

    /// Execute a (fully bound) plan, returning the result as a stream of
    /// row batches.
    pub(crate) fn stream_plan(
        &self,
        plan: &Plan,
        batch_size: usize,
        started: Instant,
        before: CountersSnapshot,
    ) -> Result<QueryStream> {
        if plan.is_parameterized() {
            return Err(Error::Plan(format!(
                "statement has {} unbound parameter(s); prepare and bind it",
                plan.n_params
            )));
        }
        // Memory governance: session entry points install the query's
        // guard ambiently; self-install here covers direct embedded use
        // (`current()` is already set on the guarded path, so this never
        // double-meters).
        let _mem_scope = if resource::current().is_none() {
            self.memory_guard().map(MemoryScope::enter)
        } else {
            None
        };
        profile::note_strategy(self.cfg.strategy.label());
        // Result cache: consult before any loading work. On a miss this
        // also captures the schema epochs *before* execution, so a file
        // edit racing the query can only make the installed entry
        // conservatively stale (its recorded epoch is already behind),
        // never incorrectly fresh.
        let cache_deps: Option<PlanDeps> = if self.result_cache.enabled() {
            match self.result_cache_lookup(plan, batch_size, started, before)? {
                CacheLookup::Served(stream) => return Ok(*stream),
                CacheLookup::Miss(deps) => Some(deps),
            }
        } else {
            None
        };
        let now = self.seq.fetch_add(1, Ordering::Relaxed) + 1;

        // Materialise per table under the active loading policy — unless
        // the morsel-driven cold pipeline can fuse loading with execution.
        let (needed_l, needed_r) = plan.referenced_per_table();
        let (filter_l, filter_r) = plan.filter_per_table();
        let body = match self.try_morsel_cold_pipeline(
            plan, &needed_l, &needed_r, &filter_l, &filter_r, batch_size, now,
        )? {
            Some(body) => body,
            None => {
                let mat_l = self.materialize_table(&plan.table, &needed_l, &filter_l, now)?;
                match &plan.join {
                    None => self.execute_single(plan, mat_l)?,
                    Some(join) => {
                        let mat_r =
                            self.materialize_table(&join.table, &needed_r, &filter_r, now)?;
                        self.execute_join(plan, mat_l, mat_r, &filter_l, &filter_r)?
                    }
                }
            }
        };

        // A fresh result just got computed: install it (and, for
        // subsumable shapes, its plan family's qualifying rows) into the
        // result cache under the epochs captured before execution.
        let body = match cache_deps {
            Some(deps) => self.result_cache_capture(plan, body, deps, now)?,
            None => body,
        };

        // Life-time management (§5.1.3): enforce the per-table budget.
        // The stream holds its own references to the materialised
        // columns, so eviction here never invalidates in-flight batches.
        if let Some(budget) = self.cfg.memory_budget {
            let mut tables = vec![plan.table.clone()];
            if let Some(j) = &plan.join {
                tables.push(j.table.clone());
            }
            for t in &tables {
                let entry = self.catalog.read().get(t)?;
                let mut e = entry.write();
                // Resident result tables have no backing file to reload
                // from — evicting their columns would destroy the data.
                if !e.resident {
                    e.store.evict_to_budget(budget, &self.counters);
                }
            }
        }

        self.counters
            .record_mem_reserved_peak(self.mem_pool.peak() as u64);
        Ok(self.stream_of(plan, batch_size, body, started, before))
    }

    /// Wrap an executed body into the standard [`QueryStream`] (labels,
    /// schema and stats derived from the plan) — shared by the fresh
    /// execution path and result-cache serves, so both produce
    /// indistinguishable streams.
    fn stream_of(
        &self,
        plan: &Plan,
        batch_size: usize,
        body: StreamBody,
        started: Instant,
        before: CountersSnapshot,
    ) -> QueryStream {
        QueryStream::new(
            plan.output_names.clone(),
            output_schema(plan),
            batch_size,
            body,
            started,
            before,
            Arc::clone(&self.counters),
            self.cfg.strategy,
        )
    }

    /// Consult the result cache for `plan`. Captures the plan's schema
    /// epochs first (running the file-fingerprint checks), validates any
    /// candidate entry against them, and serves an exact repeat verbatim
    /// or a range-subsumed query by re-filtering the cached superset
    /// through the ordinary relational pipeline. On a miss the captured
    /// epochs come back so the eventual install tags the entry with
    /// pre-execution state.
    fn result_cache_lookup(
        &self,
        plan: &Plan,
        batch_size: usize,
        started: Instant,
        before: CountersSnapshot,
    ) -> Result<CacheLookup> {
        let _p = profile::phase(Phase::ResultCacheLookup);
        let mut deps: PlanDeps = Vec::new();
        let mut tables = vec![plan.table.clone()];
        if let Some(j) = &plan.join {
            tables.push(j.table.clone());
        }
        for t in &tables {
            deps.push((t.to_ascii_lowercase(), self.ensured_epoch(t)?));
        }
        let epoch_of = |t: &str| deps.iter().find(|(n, _)| n == t).map(|(_, e)| *e);

        if let Some(rows) = self
            .result_cache
            .get_exact(&plan_fingerprint(plan), epoch_of)
        {
            self.counters.add_result_cache_hit();
            profile::note_cache(CacheOutcome::Hit);
            let body = StreamBody::Rows {
                rows: rows.as_ref().clone(),
                cursor: 0,
            };
            return Ok(CacheLookup::Served(Box::new(
                self.stream_of(plan, batch_size, body, started, before),
            )));
        }
        if let Some(wanted) = subsumable_constraint(plan) {
            if let Some((cols, n_rows)) =
                self.result_cache
                    .get_subsumed(&family_fingerprint(plan), &wanted, epoch_of)
            {
                // The family key clears ORDER BY, so this query may sort
                // on a column the installing query never referenced;
                // serve only when every needed column was captured.
                if plan
                    .referenced_columns()
                    .iter()
                    .all(|c| cols.contains_key(c))
                {
                    self.counters.add_result_cache_subsumed_hit();
                    profile::note_cache(CacheOutcome::SubsumedHit);
                    // The cached rows are the family's qualifying rows in
                    // scan order; running the standard filter → order →
                    // window → project pipeline over them yields exactly
                    // what a fresh scan would (every access path emits
                    // scan order before ORDER BY, and re-filtering
                    // preserves it).
                    let body = self.execute_relational(plan, cols, n_rows, &plan.filter)?;
                    return Ok(CacheLookup::Served(Box::new(
                        self.stream_of(plan, batch_size, body, started, before),
                    )));
                }
            }
        }
        self.counters.add_result_cache_miss();
        profile::note_cache(CacheOutcome::Miss);
        Ok(CacheLookup::Miss(deps))
    }

    /// Install a freshly computed result into the result cache: the final
    /// rows under the exact plan fingerprint, and — for subsumable shapes
    /// whose referenced columns ended up fully loaded — the plan family's
    /// qualifying rows (in scan order, with the σ range they satisfy) for
    /// future contained-range queries. Lazy cursors are drained into rows
    /// first unless even a lower-bound size estimate already exceeds the
    /// byte budget, in which case they stream through untouched.
    fn result_cache_capture(
        &self,
        plan: &Plan,
        body: StreamBody,
        deps: PlanDeps,
        now: u64,
    ) -> Result<StreamBody> {
        let _p = profile::phase(Phase::ResultCacheCapture);
        let mut evicted = 0u64;
        if let Some(constraint) = subsumable_constraint(plan) {
            evicted += self.capture_family(plan, constraint, &deps, now)?;
        }
        let cache_rows = |rows: Vec<Vec<Value>>, evicted: &mut u64| -> StreamBody {
            if rows_bytes(&rows) <= self.result_cache.budget_bytes() {
                // Capturing doubles the result's footprint (cache copy +
                // streamed copy) — meter it before committing.
                if resource::charge_current(rows_bytes(&rows)).is_err() {
                    return StreamBody::Rows { rows, cursor: 0 };
                }
                let shared = Arc::new(rows);
                *evicted += self.result_cache.insert_exact(
                    plan_fingerprint(plan),
                    Arc::clone(&shared),
                    deps.clone(),
                );
                StreamBody::Rows {
                    rows: shared.as_ref().clone(),
                    cursor: 0,
                }
            } else {
                StreamBody::Rows { rows, cursor: 0 }
            }
        };
        let body = match body {
            StreamBody::Rows { rows, .. } => cache_rows(rows, &mut evicted),
            StreamBody::Cursor(mut c) => {
                let floor = c
                    .remaining()
                    .saturating_mul(plan.output.len().max(1))
                    .saturating_mul(std::mem::size_of::<Value>());
                if floor <= self.result_cache.budget_bytes() {
                    cache_rows(c.drain_all()?, &mut evicted)
                } else {
                    StreamBody::Cursor(c)
                }
            }
        };
        if evicted > 0 {
            self.counters.add_result_cache_evictions(evicted);
        }
        Ok(body)
    }

    /// Family capture half of [`Engine::result_cache_capture`]: when every
    /// column the plan references is fully loaded in the adaptive store,
    /// re-filter the full columns into the family's qualifying rows (scan
    /// order) and cache them with the plan's σ interval. Skipped whenever
    /// the store does not hold the full columns (partial-load and
    /// external-scan strategies keep their existing behaviour).
    fn capture_family(
        &self,
        plan: &Plan,
        constraint: RangeConstraint,
        deps: &PlanDeps,
        now: u64,
    ) -> Result<u64> {
        let needed = plan.referenced_columns();
        if needed.is_empty() {
            return Ok(0);
        }
        let entry = self.catalog.read().get(&plan.table)?;
        let full: BTreeMap<usize, Arc<ColumnData>> = {
            let mut e = entry.write();
            if !e.store.missing_full(&needed).is_empty() {
                return Ok(0);
            }
            needed
                .iter()
                .map(|&c| (c, e.store.full_column(c, now).expect("checked above")))
                .collect()
        };
        let n_all = full.values().next().map(|c| c.len()).unwrap_or(0);
        let (cols, n_rows) = if plan.filter.is_always_true() {
            // Unconstrained family: share the store's columns outright.
            (full, n_all)
        } else {
            let positions = filter_positions(&full, n_all, &plan.filter)?;
            let n = positions.len();
            let cols = full
                .iter()
                .map(|(&c, col)| (c, Arc::new(col.take(&positions))))
                .collect();
            (cols, n)
        };
        Ok(self.result_cache.insert_filtered(
            family_fingerprint(plan),
            cols,
            n_rows,
            constraint,
            deps.clone(),
        ))
    }

    fn materialize_table(
        &self,
        table: &str,
        needed: &[usize],
        filter: &Conjunction,
        now: u64,
    ) -> Result<Materialized> {
        let _p = profile::phase(Phase::Load);
        let entry = self.catalog.read().get(table)?;
        // Warm adaptive-index fast path: snapshot handles under a short
        // write lock and crack outside it, so racing range queries refine
        // the partitioned index concurrently instead of serializing on
        // the entry lock for the whole materialisation.
        if let Some(m) =
            crate::policy::try_cracked_warm(&entry, needed, filter, &self.cfg, &self.counters, now)?
        {
            return Ok(m);
        }
        let m = {
            let mut e = entry.write();
            materialize(&mut e, needed, filter, &self.cfg, &self.counters, now)?
        };
        // Cold-load cracking runs *outside* the entry lock too: the policy
        // load above filled the store (under the lock, as it must), and
        // the same short-lock handle-snapshot path warm queries take now
        // installs the partitioned index and cracks it under per-partition
        // locks only — a racing range query refines concurrently instead
        // of waiting for this query's crack to finish.
        if self.cfg.use_cracking && !m.prefiltered {
            if let Some(cracked) = crate::policy::try_cracked_warm(
                &entry,
                needed,
                filter,
                &self.cfg,
                &self.counters,
                now,
            )? {
                return Ok(cracked);
            }
        }
        Ok(m)
    }

    /// Whether the engine configuration allows the fused cold pipeline at
    /// all. The A1 ablation deliberately loads one column per file trip
    /// and the fused pipeline batches all columns into one trip, which
    /// would silently nullify that measurement; the cracking ablation must
    /// keep building its index through the ordinary load path from the
    /// very first query; and an explicit Columnar or Volcano kernel
    /// selection (kernel ablations) must keep measuring the kernel it
    /// asked for, cold queries included — the fused pipeline is the hybrid
    /// kernel.
    fn fused_cold_eligible(&self) -> bool {
        self.cfg.threads > 1
            && matches!(
                self.cfg.strategy,
                LoadingStrategy::ColumnLoads | LoadingStrategy::FullLoad
            )
            && !self.cfg.one_column_per_trip
            && !self.cfg.use_cracking
            && matches!(
                self.cfg.kernel,
                KernelStrategy::Auto | KernelStrategy::Hybrid
            )
    }

    /// The morsel-driven cold pipeline: when a query's input tables are
    /// not loaded yet, tokenizer phase-2 morsels flow straight into
    /// per-worker operators — filter + partial aggregation for plain
    /// aggregates, private group tables for GROUP BY, projection emitters
    /// for scalar SELECTs, and partitioned hash-join builds/probes for
    /// joins — instead of waiting for one merged `ScanOutput`. The
    /// adaptive store still receives exactly what the serial path would
    /// have given it: the scanned columns, fully loaded (assembled from
    /// the morsels in row order), the row count, and every positional-map
    /// recording.
    ///
    /// Returns `None` when the shape or state does not qualify (the serial
    /// policy path then runs as before): resident tables, partially loaded
    /// columns, non-column-loading strategies, ablation configs, a
    /// single-threaded config, self-joins, or non-integer join keys.
    #[allow(clippy::too_many_arguments)]
    fn try_morsel_cold_pipeline(
        &self,
        plan: &Plan,
        needed_l: &[usize],
        needed_r: &[usize],
        filter_l: &Conjunction,
        filter_r: &Conjunction,
        batch_size: usize,
        now: u64,
    ) -> Result<Option<StreamBody>> {
        if !self.fused_cold_eligible() {
            return Ok(None);
        }
        let _p = profile::phase(Phase::ColdPipeline);
        match &plan.join {
            None => self.try_fused_cold_single(plan, needed_l, batch_size, now),
            Some(_) => self.try_fused_cold_join(plan, needed_l, needed_r, filter_l, filter_r, now),
        }
    }

    /// Columns the fused cold path must scan for this entry — the
    /// referenced columns, or every column under FullLoad — or `None`
    /// when the entry does not qualify: resident (no file behind it) or
    /// not fully cold (once anything is loaded, the store-aware policy
    /// path is at least as good).
    fn cold_scan_cols(&self, e: &mut TableEntry, needed: &[usize]) -> Result<Option<Vec<usize>>> {
        if e.resident {
            return Ok(None);
        }
        e.ensure_current(&self.cfg.csv, self.cfg.infer_sample_rows, &self.counters)?;
        let scan_cols: Vec<usize> = match self.cfg.strategy {
            LoadingStrategy::FullLoad => (0..e.schema()?.len()).collect(),
            _ => needed.to_vec(),
        };
        if e.store.missing_full(&scan_cols).len() != scan_cols.len() {
            return Ok(None);
        }
        Ok(Some(scan_cols))
    }

    /// Single-table half of [`Engine::try_morsel_cold_pipeline`]: plain
    /// aggregates and GROUP BY build per-worker partial states that merge
    /// after the scan; scalar projections run the per-worker projection
    /// emitters of [`cold_project_morsel`] and stitch their output in
    /// morsel order, so the result is byte-identical to the serial
    /// load-then-filter-then-project path (under ORDER BY or LIMIT/OFFSET
    /// the emitters produce positions only, and projection runs lazily
    /// over the windowed positions, as in the serial path).
    fn try_fused_cold_single(
        &self,
        plan: &Plan,
        needed: &[usize],
        batch_size: usize,
        now: u64,
    ) -> Result<Option<StreamBody>> {
        if needed.is_empty() {
            return Ok(None);
        }
        let entry = self.catalog.read().get(&plan.table)?;
        let mut e = entry.write();
        let Some(scan_cols) = self.cold_scan_cols(&mut e, needed)? else {
            return Ok(None);
        };

        let agg_specs: Vec<AggSpec> = plan
            .output
            .iter()
            .filter_map(|o| match o {
                OutputExpr::Agg(a) => Some(a.clone()),
                OutputExpr::Scalar(_) => None,
            })
            .collect();
        let residual = &plan.filter;
        let group_cols = &plan.group_by;
        // Scalar shape: no aggregates, no grouping — mirror the dispatch
        // of execute_relational exactly.
        let scalar_exprs: Option<Vec<Expr>> =
            (!plan.is_aggregate() && group_cols.is_empty()).then(|| {
                plan.output
                    .iter()
                    .map(|o| match o {
                        OutputExpr::Scalar(e) => e.clone(),
                        OutputExpr::Agg(_) => unreachable!("aggregate shape checked above"),
                    })
                    .collect()
            });
        // Projection fuses into the scan workers only when the output is
        // exactly the qualifying rows in scan order (ORDER BY must wait
        // for the global sort; LIMIT/OFFSET would eagerly project rows
        // the serial path's windowed lazy cursor never evaluates) AND the
        // caller collects the whole result anyway (batch_size == MAX,
        // i.e. `Engine::sql`). A streaming caller gets the lazy cursor —
        // materialising every row up front would defeat the stream.
        let emit_rows = batch_size == usize::MAX
            && plan.order_by.is_empty()
            && plan.limit.is_none()
            && plan.offset.is_none();

        /// Per-morsel partial state of whichever shape the query has.
        enum Partial {
            Accs(Vec<Accumulator>),
            Groups(Vec<GroupPartial>),
            Project(ProjectPartial),
        }
        let sink = |morsel: &nodb_rawcsv::Morsel| -> Result<Partial> {
            if let Some(exprs) = &scalar_exprs {
                // Scalar morsel: filter, and project right here when the
                // stitched rows will be the result verbatim.
                return Ok(Partial::Project(cold_project_morsel(
                    &scan_cols,
                    morsel,
                    residual,
                    emit_rows.then_some(exprs.as_slice()),
                )?));
            }
            let mcols = OrdinalCols::new(&scan_cols, &morsel.columns);
            let n = morsel.rowids.len();
            if group_cols.is_empty() {
                // A morsel's columns hold exactly its own rows, so an
                // always-true residual needs no selection vector at all.
                let positions = if residual.is_always_true() {
                    None
                } else {
                    Some(filter_positions(&mcols, n, residual)?)
                };
                let mut accs: Vec<Accumulator> =
                    agg_specs.iter().map(|s| Accumulator::new(s.func)).collect();
                accumulate_into(&mcols, n, positions.as_deref(), &agg_specs, &mut accs)?;
                Ok(Partial::Accs(accs))
            } else {
                // Grouped morsel: a private group table of partial states,
                // keyed for the partition-wise merge by the group's first
                // absolute row (morsel-local row + the morsel's base).
                Ok(Partial::Groups(group_accumulate_range(
                    &mcols,
                    0,
                    n,
                    residual,
                    group_cols,
                    &agg_specs,
                    morsel.first_row as u64,
                )?))
            }
        };
        let (rows_scanned, partials) = self.scan_cold_fused(&mut e, &scan_cols, now, sink)?;
        // Count as a parallel execution only when more than one morsel
        // existed — with a single morsel, scan_morsels clamps to one
        // worker and the run was effectively serial.
        if rows_scanned as usize > self.cfg.morsel_rows {
            self.counters.add_parallel_pipeline();
        }

        if let Some(exprs) = scalar_exprs {
            self.counters.add_fused_cold_projection();
            let projects: Vec<ProjectPartial> = partials
                .into_iter()
                .map(|p| match p {
                    Partial::Project(pp) => pp,
                    _ => unreachable!("scalar sink"),
                })
                .collect();
            let (mut positions, rows) = stitch_cold_projection(projects);
            if emit_rows {
                // The stitched rows *are* the result.
                return Ok(Some(StreamBody::Rows { rows, cursor: 0 }));
            }
            // ORDER BY / LIMIT / OFFSET: sort and window the positions
            // over the just-assembled columns, then the same lazy
            // projection cursor as the serial path.
            let mut cols: BTreeMap<usize, Arc<ColumnData>> = BTreeMap::new();
            for &c in needed {
                cols.insert(c, e.store.full_column(c, now).expect("just inserted"));
            }
            if !plan.order_by.is_empty() {
                positions = sort_positions(&cols, positions, &plan.order_by)?;
            }
            window(&mut positions, plan.offset, plan.limit);
            return Ok(Some(StreamBody::Cursor(ProjectionCursor::new(
                cols, positions, exprs,
            ))));
        }

        if !group_cols.is_empty() {
            let group_partials: Vec<Vec<GroupPartial>> = partials
                .into_iter()
                .map(|p| match p {
                    Partial::Groups(g) => g,
                    _ => unreachable!("grouped sink"),
                })
                .collect();
            // Partition-wise parallel merge, then the shared grouped
            // output shaping (column order, ORDER BY, OFFSET/LIMIT).
            let grouped = profile::time(Phase::GroupMerge, || {
                finish_group_partials(merge_group_partials(
                    group_partials,
                    self.cfg.threads,
                    self.cfg.group_partitions,
                )?)
            })?;
            let rows = format_grouped(plan, grouped)?;
            return Ok(Some(StreamBody::Rows { rows, cursor: 0 }));
        }

        // Plain aggregate: merge the per-morsel accumulators in morsel
        // order.
        let vals: Vec<Value> = profile::time(Phase::GroupMerge, || {
            let mut merged: Vec<Accumulator> =
                agg_specs.iter().map(|s| Accumulator::new(s.func)).collect();
            for partial in partials {
                let Partial::Accs(accs) = partial else {
                    unreachable!("aggregate sink")
                };
                for (m, p) in merged.iter_mut().zip(accs) {
                    m.merge(p)?;
                }
            }
            merged
                .iter()
                .map(|a| a.finish())
                .collect::<Result<Vec<_>>>()
        })?;
        let mut rows = vec![vals];
        window(&mut rows, plan.offset, plan.limit);
        Ok(Some(StreamBody::Rows { rows, cursor: 0 }))
    }

    /// Scan one fully cold table through the morsel pipeline (no
    /// pushdown), feeding the adaptive store and positional map exactly
    /// as the serial load would: columns reassembled in row order and
    /// installed full, row count set, every posmap recording written
    /// back. Each morsel is handed to `sink` on the scan worker; the
    /// per-morsel payloads come back in morsel index order together with
    /// the rows scanned. This is the single copy of the store-feeding
    /// plumbing every fused cold shape (aggregate, grouped, scalar, join
    /// build, join probe) runs through.
    fn scan_cold_fused<T: Send>(
        &self,
        e: &mut TableEntry,
        scan_cols: &[usize],
        now: u64,
        sink: impl Fn(&nodb_rawcsv::Morsel) -> Result<T> + Sync,
    ) -> Result<(u64, Vec<T>)> {
        let bytes = crate::policy::read_data_bytes(e, &self.counters)?;
        let schema = e.schema()?.clone();
        let spec = nodb_rawcsv::ScanSpec {
            schema: &schema,
            needed: scan_cols.to_vec(),
            pushdown: None, // the store needs full columns, as in serial loads
        };
        let pieces: std::sync::Mutex<Vec<(usize, Vec<ColumnData>, T)>> =
            std::sync::Mutex::new(Vec::new());
        let consume = |_worker: usize, morsel: nodb_rawcsv::Morsel| -> Result<()> {
            let payload = sink(&morsel)?;
            pieces
                .lock()
                .expect("pieces mutex")
                .push((morsel.index, morsel.columns, payload));
            Ok(())
        };
        let posmap = self.cfg.use_positional_map.then_some(&mut e.posmap);
        let rows_scanned = nodb_rawcsv::scan_morsels(
            &bytes,
            &self.cfg.csv,
            &spec,
            posmap,
            &self.counters,
            self.cfg.morsel_rows,
            &consume,
        )?;
        let mut pieces = pieces.into_inner().expect("pieces mutex");
        pieces.sort_by_key(|p| p.0);
        let mut full: Vec<ColumnData> = scan_cols
            .iter()
            .map(|&c| ColumnData::empty(schema.field(c).expect("validated").data_type))
            .collect();
        let mut payloads: Vec<T> = Vec::with_capacity(pieces.len());
        for (_index, columns, payload) in pieces {
            for (dst, src) in full.iter_mut().zip(columns) {
                dst.append(src)?;
            }
            payloads.push(payload);
        }
        for (&c, col) in scan_cols.iter().zip(full) {
            e.store.insert_full(c, col, now);
        }
        e.store.set_nrows(rows_scanned);
        Ok((rows_scanned, payloads))
    }

    /// Join half of [`Engine::try_morsel_cold_pipeline`]: when both join
    /// inputs are fully cold with integer join keys, the build side's
    /// tokenizer morsels are filtered and hash-partitioned into `(key,
    /// row)` entries on the scan workers ([`cold_join_build_morsel`] —
    /// the same radix scheme as the warm partitioned join), the partition
    /// tables are built in parallel, and the probe side's morsels probe
    /// them directly as they are parsed. Pair order reproduces the serial
    /// `hash_join_positions`-over-gathered-keys order exactly, and both
    /// adaptive stores plus positional maps end up exactly as two serial
    /// loads would leave them. Locks are taken one entry at a time, never
    /// nested.
    fn try_fused_cold_join(
        &self,
        plan: &Plan,
        needed_l: &[usize],
        needed_r: &[usize],
        filter_l: &Conjunction,
        filter_r: &Conjunction,
        now: u64,
    ) -> Result<Option<StreamBody>> {
        let join = plan.join.as_ref().expect("join plan");
        // A self-join loads once and reuses the store; the serial path
        // already handles that shape well.
        if plan.table.eq_ignore_ascii_case(&join.table) {
            return Ok(None);
        }
        if needed_l.is_empty() || needed_r.is_empty() {
            return Ok(None);
        }
        let entry_l = self.catalog.read().get(&plan.table)?;
        let entry_r = self.catalog.read().get(&join.table)?;

        /// Fused-join eligibility of one side: fully cold with an Int64
        /// join key. Runs under the caller's entry lock.
        fn side_scan_cols(
            engine: &Engine,
            e: &mut TableEntry,
            needed: &[usize],
            key: usize,
        ) -> Result<Option<Vec<usize>>> {
            let Some(cols) = engine.cold_scan_cols(e, needed)? else {
                return Ok(None);
            };
            if e.schema()?.field(key).map(|f| f.data_type) != Some(DataType::Int64) {
                return Ok(None);
            }
            Ok(Some(cols))
        }

        // Gate the probe side first, under a short lock: both sides must
        // qualify before any scanning starts, otherwise the serial policy
        // path runs untouched.
        if side_scan_cols(self, &mut entry_r.write(), needed_r, join.right_key)?.is_none() {
            return Ok(None);
        }

        // Build side: scan, filter and hash-partition the join keys on
        // the scan workers, then build one table per partition.
        let p = cold_join_partitions(self.cfg.threads);
        let (rows_l, build_parts, cols_l) = {
            let mut e = entry_l.write();
            let Some(scan_cols) = side_scan_cols(self, &mut e, needed_l, join.left_key)? else {
                return Ok(None);
            };
            let kslot = scan_cols
                .iter()
                .position(|&c| c == join.left_key)
                .ok_or_else(|| Error::exec("join key not in scan columns"))?;
            let (rows, parts) = self.scan_cold_fused(&mut e, &scan_cols, now, |morsel| {
                let local = morsel_local_positions(&scan_cols, morsel, filter_l)?;
                Ok(cold_join_build_morsel(
                    &morsel.columns[kslot],
                    &local,
                    morsel.first_row,
                    p,
                ))
            })?;
            let mut cols: BTreeMap<usize, Arc<ColumnData>> = BTreeMap::new();
            for &c in needed_l {
                cols.insert(c, e.store.full_column(c, now).expect("just inserted"));
            }
            (rows, parts, cols)
        };
        let tables = profile::time(Phase::JoinBuild, || {
            build_cold_join_tables(build_parts, p, self.cfg.threads)
        })?;

        // Probe side: each morsel probes the partition tables as soon as
        // it is parsed; chunk concatenation in morsel order reproduces
        // the serial probe-scan pair order.
        let (rows_r, pair_chunks, cols_r) = {
            let mut e = entry_r.write();
            // Re-validate under the lock: the pre-scan gate released it,
            // and a racing query may have loaded (or a file edit
            // re-inferred) this table meanwhile. Falling back is safe —
            // the build side is now loaded exactly as a serial load, so
            // the serial path serves it warm.
            let Some(scan_cols) = side_scan_cols(self, &mut e, needed_r, join.right_key)? else {
                return Ok(None);
            };
            let kslot = scan_cols
                .iter()
                .position(|&c| c == join.right_key)
                .ok_or_else(|| Error::exec("join key not in scan columns"))?;
            let (rows, chunks) = self.scan_cold_fused(&mut e, &scan_cols, now, |morsel| {
                let local = morsel_local_positions(&scan_cols, morsel, filter_r)?;
                Ok(tables.probe_morsel(&morsel.columns[kslot], &local, morsel.first_row))
            })?;
            let mut cols: BTreeMap<usize, Arc<ColumnData>> = BTreeMap::new();
            for &c in needed_r {
                cols.insert(c, e.store.full_column(c, now).expect("just inserted"));
            }
            (rows, chunks, cols)
        };
        self.counters.add_fused_cold_join();
        if rows_l as usize > self.cfg.morsel_rows || rows_r as usize > self.cfg.morsel_rows {
            self.counters.add_parallel_pipeline();
        }

        // The pairs are already in absolute row coordinates — gather the
        // payload columns into the combined map and run the shared
        // post-join pipeline, exactly as execute_join does after
        // resolving its dense pairs.
        let (combined, n) = profile::time(Phase::JoinProbe, || {
            let total: usize = pair_chunks.iter().map(Vec::len).sum();
            let mut li: Vec<usize> = Vec::with_capacity(total);
            let mut ri: Vec<usize> = Vec::with_capacity(total);
            for chunk in pair_chunks {
                for (a, b) in chunk {
                    li.push(a);
                    ri.push(b);
                }
            }
            let mut combined: BTreeMap<usize, Arc<ColumnData>> = BTreeMap::new();
            for (&c, col) in &cols_l {
                combined.insert(c, Arc::new(col.take(&li)));
            }
            for (&c, col) in &cols_r {
                combined.insert(plan.left_width + c, Arc::new(col.take(&ri)));
            }
            (combined, li.len())
        });
        Ok(Some(self.execute_relational(
            plan,
            combined,
            n,
            &Conjunction::always(),
        )?))
    }

    fn execute_single(&self, plan: &Plan, mat: Materialized) -> Result<StreamBody> {
        let residual = if mat.prefiltered {
            Conjunction::always()
        } else {
            plan.filter.clone()
        };
        self.execute_relational(plan, mat.cols, mat.n_rows, &residual)
    }

    fn execute_join(
        &self,
        plan: &Plan,
        mat_l: Materialized,
        mat_r: Materialized,
        filter_l: &Conjunction,
        filter_r: &Conjunction,
    ) -> Result<StreamBody> {
        let join = plan.join.as_ref().expect("join plan");
        // Reduce each side to qualifying positions first.
        let pos_l = if mat_l.prefiltered || filter_l.is_always_true() {
            None
        } else {
            Some(filter_positions(&mat_l.cols, mat_l.n_rows, filter_l)?)
        };
        let pos_r = if mat_r.prefiltered || filter_r.is_always_true() {
            None
        } else {
            Some(filter_positions(&mat_r.cols, mat_r.n_rows, filter_r)?)
        };

        let gather =
            |col: Option<&Arc<ColumnData>>, pos: &Option<Vec<usize>>| -> Result<ColumnData> {
                let col = col.ok_or_else(|| Error::exec("join key not materialised"))?;
                Ok(match pos {
                    None => col.as_ref().clone(),
                    Some(p) => col.take(p),
                })
            };
        let key_l = gather(mat_l.cols.get(&join.left_key), &pos_l)?;
        let key_r = gather(mat_r.cols.get(&join.right_key), &pos_r)?;
        // Below `join_min_rows` the build stays serial: thread dispatch
        // plus the partition scatter cost more than they save on small
        // builds (the measured sub-1.0 speedup of the old always-parallel
        // gate).
        let join_rows = key_l.len().max(key_r.len());
        let pairs = profile::time(Phase::JoinBuild, || {
            if self.cfg.threads > 1 && join_rows >= self.cfg.join_min_rows {
                self.counters.add_parallel_pipeline();
                parallel_hash_join_positions(&key_l, &key_r, self.cfg.threads, self.cfg.morsel_rows)
            } else {
                hash_join_positions(&key_l, &key_r)
            }
        })?;

        // Map join positions back through the filters and gather payload
        // columns into a combined, dense column map.
        let n = pairs.len();
        let combined = profile::time(Phase::JoinProbe, || {
            let resolve = |p: usize, pos: &Option<Vec<usize>>| match pos {
                None => p,
                Some(v) => v[p],
            };
            let li: Vec<usize> = pairs.iter().map(|&(a, _)| resolve(a, &pos_l)).collect();
            let ri: Vec<usize> = pairs.iter().map(|&(_, b)| resolve(b, &pos_r)).collect();
            let mut combined: BTreeMap<usize, Arc<ColumnData>> = BTreeMap::new();
            for (&c, col) in &mat_l.cols {
                combined.insert(c, Arc::new(col.take(&li)));
            }
            for (&c, col) in &mat_r.cols {
                combined.insert(plan.left_width + c, Arc::new(col.take(&ri)));
            }
            combined
        });
        self.execute_relational(plan, combined, n, &Conjunction::always())
    }

    /// Whether a parallel kernel pays for its thread dispatch on `n_rows`
    /// of input: more than one worker configured and at least one full
    /// morsel of work.
    fn parallel_worthwhile(&self, n_rows: usize) -> bool {
        self.cfg.threads > 1 && n_rows >= self.cfg.morsel_rows
    }

    /// The post-load relational pipeline: filter → group/aggregate →
    /// order → offset/limit → project, with the kernel strategy applied.
    /// Aggregate and grouped results come back fully computed (they are
    /// small); plain scalar results come back as a lazy projection cursor
    /// so the driver can stream them batch by batch.
    fn execute_relational(
        &self,
        plan: &Plan,
        cols: BTreeMap<usize, Arc<ColumnData>>,
        n_rows: usize,
        residual: &Conjunction,
    ) -> Result<StreamBody> {
        let _p = profile::phase(Phase::WarmKernel);
        let agg_specs: Vec<AggSpec> = plan
            .output
            .iter()
            .filter_map(|o| match o {
                OutputExpr::Agg(a) => Some(a.clone()),
                OutputExpr::Scalar(_) => None,
            })
            .collect();

        if plan.is_aggregate() && plan.group_by.is_empty() {
            // Plain aggregation: the kernel choice matters most here.
            let kernel = self.cfg.kernel;
            let vals = match kernel {
                KernelStrategy::Hybrid | KernelStrategy::Auto => {
                    if self.parallel_worthwhile(n_rows) {
                        self.counters.add_parallel_pipeline();
                        parallel_filter_aggregate(
                            &cols,
                            n_rows,
                            residual,
                            &agg_specs,
                            self.cfg.threads,
                            self.cfg.morsel_rows,
                        )?
                    } else {
                        fused_filter_aggregate(&cols, n_rows, residual, &agg_specs)?
                    }
                }
                KernelStrategy::Columnar => {
                    let pos = if residual.is_always_true() {
                        None
                    } else {
                        Some(filter_positions(&cols, n_rows, residual)?)
                    };
                    aggregate(&cols, n_rows, pos.as_deref(), &agg_specs)?
                }
                KernelStrategy::Volcano => {
                    let width = plan.combined_schema.len();
                    let scan = ColumnsScan::new(&cols, width, n_rows);
                    let filter = nodb_exec::FilterOp::new(scan, residual.clone());
                    let mut agg = nodb_exec::AggregateOp::new(filter, agg_specs.clone());
                    let mut out = nodb_exec::collect(&mut agg)?;
                    let mut rows = vec![out.remove(0)];
                    window(&mut rows, plan.offset, plan.limit);
                    return Ok(StreamBody::Rows { rows, cursor: 0 });
                }
            };
            let mut rows = vec![vals];
            window(&mut rows, plan.offset, plan.limit);
            return Ok(StreamBody::Rows { rows, cursor: 0 });
        }

        if !plan.group_by.is_empty() {
            // Grouped aggregation: morsel-parallel per-worker group tables
            // with a partition-wise merge when the input is big enough
            // (kernel ablations keep measuring the serial fold).
            let grouped = if matches!(
                self.cfg.kernel,
                KernelStrategy::Auto | KernelStrategy::Hybrid
            ) && self.parallel_worthwhile(n_rows)
            {
                self.counters.add_parallel_pipeline();
                parallel_group_aggregate(
                    &cols,
                    n_rows,
                    residual,
                    &plan.group_by,
                    &agg_specs,
                    self.cfg.threads,
                    self.cfg.morsel_rows,
                    self.cfg.group_partitions,
                )?
            } else {
                let pos = if residual.is_always_true() {
                    None
                } else {
                    Some(filter_positions(&cols, n_rows, residual)?)
                };
                group_aggregate(&cols, n_rows, pos.as_deref(), &plan.group_by, &agg_specs)?
            };
            let rows = format_grouped(plan, grouped)?;
            return Ok(StreamBody::Rows { rows, cursor: 0 });
        }

        // Scalar (non-aggregate) query: resolve the qualifying positions
        // eagerly (in parallel when the input is big enough), project
        // lazily (batch by batch) — the stream is fed straight from the
        // parallel pipeline's selection vector.
        let mut positions = if residual.is_always_true() {
            (0..n_rows).collect()
        } else if self.parallel_worthwhile(n_rows) {
            self.counters.add_parallel_pipeline();
            parallel_filter_positions(
                &cols,
                n_rows,
                residual,
                self.cfg.threads,
                self.cfg.morsel_rows,
            )?
        } else {
            filter_positions(&cols, n_rows, residual)?
        };
        if !plan.order_by.is_empty() {
            positions = sort_positions(&cols, positions, &plan.order_by)?;
        }
        window(&mut positions, plan.offset, plan.limit);
        let exprs: Vec<Expr> = plan
            .output
            .iter()
            .map(|o| match o {
                OutputExpr::Scalar(e) => e.clone(),
                OutputExpr::Agg(_) => unreachable!("aggregate handled above"),
            })
            .collect();
        Ok(StreamBody::Cursor(ProjectionCursor::new(
            cols, positions, exprs,
        )))
    }
}

/// Morsel-local qualifying positions under `filter` — all rows when the
/// filter is always true. The morsel must come from a pushdown-free scan
/// (its columns hold exactly its own rows).
fn morsel_local_positions(
    scan_cols: &[usize],
    morsel: &nodb_rawcsv::Morsel,
    filter: &Conjunction,
) -> Result<Vec<usize>> {
    let n = morsel.rowids.len();
    if filter.is_always_true() {
        return Ok((0..n).collect());
    }
    filter_positions(&OrdinalCols::new(scan_cols, &morsel.columns), n, filter)
}

/// Column types inferred from result values — the promotion used when a
/// result becomes a table: any string makes the column textual, else any
/// float makes it `f64`, else `i64` (all-null columns read as `i64`).
/// Shared by [`Engine::register_result`] and the wire server's cursor
/// descriptions so the advertised types can never diverge from what the
/// engine registers.
pub fn result_column_types(ncols: usize, rows: &[Vec<Value>]) -> Vec<DataType> {
    let mut types = vec![DataType::Int64; ncols];
    for row in rows {
        for (c, v) in row.iter().enumerate().take(ncols) {
            types[c] = match v {
                Value::Null => types[c],
                Value::Int(_) => types[c],
                Value::Float(_) => types[c].unify(DataType::Float64),
                Value::Str(_) => DataType::Str,
            };
        }
    }
    types
}

/// First SQL keyword of `text`, skipping leading whitespace and `--`
/// line comments (statement dispatch must agree with the lexer about
/// what a statement "starts with"). Public so the wire server dispatches
/// `CREATE TABLE .. AS SELECT` exactly like [`Engine::sql`] does.
pub fn leading_keyword(text: &str) -> &str {
    let mut rest = text.trim_start();
    while let Some(stripped) = rest.strip_prefix("--") {
        rest = match stripped.find('\n') {
            Some(i) => stripped[i + 1..].trim_start(),
            None => "",
        };
    }
    let end = rest.find(|c: char| c.is_whitespace()).unwrap_or(rest.len());
    &rest[..end]
}

/// The remainder of `text` after its leading keyword (and any leading
/// whitespace or `--` comments the keyword scan skipped) — how `EXPLAIN`
/// and `EXPLAIN ANALYZE` peel their prefixes off the statement they
/// describe.
fn after_keyword(text: &str) -> &str {
    let kw = leading_keyword(text);
    // leading_keyword returns a subslice of `text`, so the offset is the
    // pointer distance.
    let start = kw.as_ptr() as usize - text.as_ptr() as usize;
    &text[start + kw.len()..]
}

/// Tables a query references (FROM plus the optional JOIN).
fn tables_of(ast: &nodb_sql::AstQuery) -> Vec<String> {
    let mut tables = vec![ast.table.clone()];
    if let Some(j) = &ast.join {
        tables.push(j.table.clone());
    }
    tables
}

/// Shape grouped results (`[keys..., aggs...]` rows in group order, the
/// layout both `group_aggregate` and the parallel merge produce) into the
/// plan's declared output: re-order columns, apply ORDER BY on group keys
/// (validated by the planner), then OFFSET/LIMIT.
fn format_grouped(plan: &Plan, grouped: Vec<Vec<Value>>) -> Result<Vec<Vec<Value>>> {
    let mut rows: Vec<Vec<Value>> = Vec::with_capacity(grouped.len());
    for g in &grouped {
        let mut row = Vec::with_capacity(plan.output.len());
        let mut agg_i = 0;
        for o in &plan.output {
            match o {
                OutputExpr::Scalar(Expr::Col(c)) => {
                    let k = plan
                        .group_by
                        .iter()
                        .position(|g| g == c)
                        .expect("validated by planner");
                    row.push(g[k].clone());
                }
                OutputExpr::Scalar(_) => {
                    return Err(Error::Plan(
                        "grouped outputs must be columns or aggregates".into(),
                    ))
                }
                OutputExpr::Agg(_) => {
                    row.push(g[plan.group_by.len() + agg_i].clone());
                    agg_i += 1;
                }
            }
        }
        rows.push(row);
    }
    if !plan.order_by.is_empty() {
        let key_positions: Vec<(usize, bool)> = plan
            .order_by
            .iter()
            .map(|(c, asc)| {
                let k = plan
                    .group_by
                    .iter()
                    .position(|g| g == c)
                    .expect("validated");
                // Position of that key within the grouped row.
                (k, *asc)
            })
            .collect();
        let mut tagged: Vec<(Vec<Value>, Vec<Value>)> = grouped.into_iter().zip(rows).collect();
        tagged.sort_by(|(ga, _), (gb, _)| {
            for &(k, asc) in &key_positions {
                let ord = ga[k].total_cmp(&gb[k]);
                if !ord.is_eq() {
                    return if asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        rows = tagged.into_iter().map(|(_, r)| r).collect();
    }
    window(&mut rows, plan.offset, plan.limit);
    Ok(rows)
}

/// Apply `OFFSET m` then `LIMIT n` to an ordered result vector.
fn window<T>(v: &mut Vec<T>, offset: Option<usize>, limit: Option<usize>) {
    if let Some(off) = offset {
        if off > 0 {
            v.drain(..off.min(v.len()));
        }
    }
    if let Some(n) = limit {
        v.truncate(n);
    }
}

/// Coerce a value into a column type chosen by [`Engine::register_result`]
/// (ints widen to float in float columns; anything renders to text in
/// string columns).
fn coerce(v: Value, ty: DataType) -> Value {
    match (v, ty) {
        (Value::Int(i), DataType::Float64) => Value::Float(i as f64),
        (v @ Value::Str(_), DataType::Str) | (v @ Value::Null, _) => v,
        (v, DataType::Str) => Value::Str(v.to_string()),
        (v, _) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(name: &str, content: &str) -> (PathBuf, Engine) {
        let dir = std::env::temp_dir().join(format!("nodb_engine_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        std::fs::write(&path, content).unwrap();
        let mut cfg = EngineConfig::default().with_threads(1);
        cfg.store_dir = Some(dir.join("store"));
        let engine = Engine::new(cfg);
        engine.register_table("r", &path).unwrap();
        (dir, engine)
    }

    const DATA: &str = "0,10,100,7\n1,11,101,7\n2,12,102,8\n3,13,103,8\n4,14,104,9\n";

    #[test]
    fn paper_q1_end_to_end() {
        let (_d, e) = setup("q1", DATA);
        let out = e
            .sql("select sum(a1),min(a4),max(a3),avg(a2) from r where a1>0 and a1<4 and a2>10 and a2<14")
            .unwrap();
        assert_eq!(
            out.columns,
            vec!["sum(a1)", "min(a4)", "max(a3)", "avg(a2)"]
        );
        assert_eq!(out.rows.len(), 1);
        // Qualifying rows: a1 in {1,2,3} ∧ a2 in {11,12,13} → rows 1..=3.
        assert_eq!(out.rows[0][0], Value::Int(6));
        assert_eq!(out.rows[0][1], Value::Int(7));
        assert_eq!(out.rows[0][2], Value::Int(103));
        assert_eq!(out.rows[0][3], Value::Float(12.0));
    }

    #[test]
    fn select_star_and_limit() {
        let (_d, e) = setup("star", DATA);
        let out = e.sql("select * from r limit 2").unwrap();
        assert_eq!(out.columns, vec!["a1", "a2", "a3", "a4"]);
        assert_eq!(out.rows.len(), 2);
        assert_eq!(out.rows[0][0], Value::Int(0));
    }

    #[test]
    fn order_by_desc() {
        let (_d, e) = setup("order", DATA);
        let out = e
            .sql("select a1 from r where a4 = 8 order by a1 desc")
            .unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(3)], vec![Value::Int(2)]]);
    }

    #[test]
    fn group_by_with_ordering() {
        let (_d, e) = setup("group", DATA);
        let out = e
            .sql("select a4, count(*), sum(a1) from r group by a4 order by a4")
            .unwrap();
        assert_eq!(
            out.rows,
            vec![
                vec![Value::Int(7), Value::Int(2), Value::Int(1)],
                vec![Value::Int(8), Value::Int(2), Value::Int(5)],
                vec![Value::Int(9), Value::Int(1), Value::Int(4)],
            ]
        );
    }

    #[test]
    fn count_star_without_touching_columns() {
        let (_d, e) = setup("count", DATA);
        let out = e.sql("select count(*) from r").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(5)));
        assert_eq!(out.stats.work.values_parsed, 0);
    }

    #[test]
    fn join_end_to_end() {
        let (d, e) = setup("join", "1,10\n2,20\n3,30\n");
        let s_path = d.join("s.csv");
        std::fs::write(&s_path, "3,300\n1,100\n9,900\n").unwrap();
        e.register_table("s", &s_path).unwrap();
        let out = e
            .sql("select r.a1, r.a2, s.a2 from r join s on r.a1 = s.a1 order by r.a1")
            .unwrap();
        assert_eq!(
            out.rows,
            vec![
                vec![Value::Int(1), Value::Int(10), Value::Int(100)],
                vec![Value::Int(3), Value::Int(30), Value::Int(300)],
            ]
        );
    }

    #[test]
    fn join_with_aggregates_and_filters() {
        let (d, e) = setup("joinagg", "1,10\n2,20\n3,30\n4,40\n");
        let s_path = d.join("s.csv");
        std::fs::write(&s_path, "1,5\n2,6\n3,7\n4,8\n").unwrap();
        e.register_table("s", &s_path).unwrap();
        let out = e
            .sql("select sum(r.a2), sum(s.a2) from r join s on r.a1 = s.a1 where r.a1 > 1 and s.a2 < 8")
            .unwrap();
        // Matching keys after filters: 2 and 3.
        assert_eq!(out.rows[0], vec![Value::Int(50), Value::Int(13)]);
    }

    #[test]
    fn all_strategies_same_results() {
        let sql = "select sum(a1),avg(a2) from r where a1>0 and a1<4";
        let mut reference: Option<Vec<Value>> = None;
        for strategy in [
            LoadingStrategy::FullLoad,
            LoadingStrategy::ExternalScan,
            LoadingStrategy::ColumnLoads,
            LoadingStrategy::PartialLoadsV1,
            LoadingStrategy::PartialLoadsV2,
            LoadingStrategy::SplitFiles,
        ] {
            let dir =
                std::env::temp_dir().join(format!("nodb_engine_allstrat_{}", strategy.label()));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("r.csv");
            std::fs::write(&path, DATA).unwrap();
            let mut cfg = EngineConfig::with_strategy(strategy);
            cfg.threads = 1;
            cfg.store_dir = Some(dir.join("store"));
            let e = Engine::new(cfg);
            e.register_table("r", &path).unwrap();
            // Run twice: cold then warm must agree too.
            for _ in 0..2 {
                let out = e.sql(sql).unwrap();
                match &reference {
                    None => reference = Some(out.rows[0].clone()),
                    Some(r) => assert_eq!(&out.rows[0], r, "{}", strategy.label()),
                }
            }
        }
    }

    #[test]
    fn all_kernels_same_results() {
        for kernel in [
            KernelStrategy::Auto,
            KernelStrategy::Columnar,
            KernelStrategy::Volcano,
            KernelStrategy::Hybrid,
        ] {
            let dir = std::env::temp_dir().join(format!("nodb_engine_kernel_{kernel:?}"));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join("r.csv");
            std::fs::write(&path, DATA).unwrap();
            let mut cfg = EngineConfig {
                kernel,
                ..EngineConfig::default()
            };
            cfg.threads = 1;
            let e = Engine::new(cfg);
            e.register_table("r", &path).unwrap();
            let out = e
                .sql("select sum(a1), max(a3), count(*) from r where a2 > 10 and a2 < 14")
                .unwrap();
            assert_eq!(
                out.rows[0],
                vec![Value::Int(6), Value::Int(103), Value::Int(3)],
                "{kernel:?}"
            );
        }
    }

    #[test]
    fn file_edit_reflected_in_next_query() {
        let (d, e) = setup("edit", "1,2\n3,4\n");
        let out = e.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(4)));
        // Edit the raw file ("the user can edit or change a file at any time").
        std::fs::write(d.join("r.csv"), "10,2\n30,4\n50,6\n").unwrap();
        let out = e.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(90)));
    }

    #[test]
    fn unknown_table_mentions_registered() {
        let (_d, e) = setup("unknown", DATA);
        let err = e.sql("select a1 from nope").unwrap_err().to_string();
        assert!(err.contains("registered"), "{err}");
    }

    #[test]
    fn stats_report_work_and_strategy() {
        let (_d, e) = setup("stats", DATA);
        let out = e.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.stats.strategy, LoadingStrategy::ColumnLoads);
        assert_eq!(out.stats.work.file_trips, 1);
        assert!(out.stats.work.values_parsed >= 5);
        // Second query over the same column: no file work.
        let out = e.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.stats.work.file_trips, 0);
        assert_eq!(out.stats.work.values_parsed, 0);
    }

    #[test]
    fn table_info_reflects_loading() {
        let (_d, e) = setup("info", DATA);
        let before = e.table_info("r").unwrap();
        assert!(before.schema.is_none());
        assert!(before.loaded_columns.is_empty());
        e.sql("select sum(a2) from r").unwrap();
        let after = e.table_info("r").unwrap();
        assert_eq!(after.schema.unwrap().len(), 4);
        assert_eq!(after.loaded_columns, vec![1]);
        assert!(after.store_bytes > 0);
    }

    #[test]
    fn persist_and_restore_round_trip() {
        let (d, e) = setup("persist", DATA);
        e.sql("select sum(a1), sum(a2) from r").unwrap();
        let cold_dir = d.join("cold");
        assert_eq!(e.persist_table("r", &cold_dir).unwrap(), 2);

        // Fresh engine: restore instead of re-parsing CSV.
        let cfg = EngineConfig::default().with_threads(1);
        let e2 = Engine::new(cfg);
        e2.register_table("r", d.join("r.csv")).unwrap();
        assert_eq!(e2.restore_table("r", &cold_dir).unwrap(), 2);
        let before = e2.counters().snapshot();
        let out = e2.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(10)));
        // No CSV parsing happened for this query.
        assert_eq!(e2.counters().snapshot().since(&before).values_parsed, 0);
    }

    #[test]
    fn memory_budget_evicts_after_queries() {
        let dir = std::env::temp_dir().join("nodb_engine_budget");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..1000 {
            data.push_str(&format!("{i},{},{}\n", i * 2, i * 3));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::default().with_threads(1);
        cfg.memory_budget = Some(10_000); // fits one 8 KB column, not three
        let e = Engine::new(cfg);
        e.register_table("r", &path).unwrap();
        e.sql("select sum(a1) from r").unwrap();
        e.sql("select sum(a2) from r").unwrap();
        e.sql("select sum(a3) from r").unwrap();
        let info = e.table_info("r").unwrap();
        assert!(
            info.store_bytes <= 10_000,
            "store stayed within budget: {}",
            info.store_bytes
        );
        assert!(e.counters().snapshot().tuples_evicted > 0);
        // Queries still answer correctly after eviction.
        let out = e.sql("select sum(a1) from r").unwrap();
        assert_eq!(out.scalar(), Some(&Value::Int(499_500)));
    }

    #[test]
    fn csv_export_round_trips_through_the_engine() {
        let (d, e) = setup("export", DATA);
        let out = e
            .sql("select a1, a2 + a3 as total from r where a4 = 8 order by a1")
            .unwrap();
        let export = d.join("result.csv");
        out.save_csv(&export).unwrap();
        // The exported result is itself a queryable raw file.
        e.register_table("result", &export).unwrap();
        let back = e.sql("select total from result order by a1").unwrap();
        assert_eq!(
            back.rows,
            vec![vec![Value::Int(114)], vec![Value::Int(116)]]
        );
    }

    #[test]
    fn csv_export_quotes_tricky_fields() {
        let dir = std::env::temp_dir().join("nodb_engine_exportq");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        std::fs::write(&path, "1,plain\n2,\"has,comma\"\n3,\"has \"\"quote\"\"\"\n").unwrap();
        let mut cfg = EngineConfig::default().with_threads(1);
        cfg.csv.quote = Some(b'"');
        let e = Engine::new(cfg);
        e.register_table("r", &path).unwrap();
        let out = e.sql("select a1, a2 from r order by a1").unwrap();
        let mut buf = Vec::new();
        out.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"has,comma\""), "{text}");
        assert!(text.contains("\"has \"\"quote\"\"\""), "{text}");
        // And it parses back identically.
        let back = dir.join("back.csv");
        out.save_csv(&back).unwrap();
        e.register_table("back", &back).unwrap();
        let again = e.sql("select a2 from back where a1 = 2").unwrap();
        assert_eq!(again.rows[0][0], Value::Str("has,comma".into()));
    }

    #[test]
    fn explain_describes_plan_and_loader_state() {
        let (_d, e) = setup("explain", DATA);
        let text = e
            .explain("select sum(a1), avg(a2) from r where a1 > 1 and a1 < 4 order by a1 limit 5")
            .unwrap_err();
        // ORDER BY on an aggregate query without GROUP BY is a plan error.
        assert!(text.to_string().contains("GROUP BY"));
        let text = e
            .explain("select sum(a1), avg(a2) from r where a1 > 1 and a1 < 4")
            .unwrap();
        assert!(
            text.contains("AdaptiveLoad table=r columns=[a1, a2]"),
            "{text}"
        );
        assert!(text.contains("pushdown"), "{text}");
        assert!(text.contains("missing columns [0, 1]"), "{text}");
        // After running it, explain reports the columns as loaded.
        e.sql("select sum(a1), avg(a2) from r where a1 > 1 and a1 < 4")
            .unwrap();
        let text = e
            .explain("select sum(a1), avg(a2) from r where a1 > 1 and a1 < 4")
            .unwrap();
        assert!(text.contains("2 of 2 referenced columns loaded"), "{text}");
    }

    #[test]
    fn explain_shows_both_strategy_labels() {
        let (_d, e) = setup("explainlabels", DATA);
        let text = e.explain("select sum(a1) from r").unwrap();
        assert!(text.contains("-- strategy: column-loads"), "{text}");
        assert!(text.contains("-- kernel: auto"), "{text}");
    }

    #[test]
    fn explain_travels_through_sql_as_rows() {
        let (_d, e) = setup("explainsql", DATA);
        let out = e.sql("explain select sum(a1) from r where a1 > 1").unwrap();
        assert_eq!(out.columns, vec!["plan".to_owned()]);
        let listing: Vec<String> = out
            .rows
            .iter()
            .map(|r| match &r[0] {
                Value::Str(s) => s.clone(),
                other => panic!("plan rows are strings, got {other:?}"),
            })
            .collect();
        assert!(
            listing.iter().any(|l| l.contains("AdaptiveLoad")),
            "{listing:?}"
        );
        // Plain EXPLAIN never executes: the referenced column stays cold.
        assert!(
            listing.iter().any(|l| l.contains("would load from file")),
            "{listing:?}"
        );
        // Missing statement is a plan error, not a panic.
        assert!(e.sql("explain").is_err());
        assert!(e.sql("explain analyze").is_err());
    }

    #[test]
    fn explain_analyze_profiles_cold_grouped_query() {
        // Parallel config so the cold fused pipeline (morsel aggregates)
        // runs — the acceptance shape: cold + GROUP BY.
        let dir = std::env::temp_dir().join("nodb_engine_analyze");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..50_000i64 {
            data.push_str(&format!("{},{},{}\n", i, i % 97, i * 3));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::default().with_threads(4);
        cfg.morsel_rows = 4096;
        let e = Engine::new(cfg);
        e.register_table("r", &path).unwrap();

        let started = Instant::now();
        let text = e
            .explain_analyze("select a2, sum(a1) from r where a1 > 100 group by a2")
            .unwrap();
        let wall = started.elapsed();
        // The listing carries the shared renderer plus measured lines.
        assert!(text.contains("-- strategy: column-loads"), "{text}");
        assert!(text.contains("-- kernel: auto"), "{text}");
        assert!(text.contains("GroupBy"), "{text}");
        assert!(text.contains("-- analyze: rows=97 "), "{text}");
        assert!(text.contains("cache=bypass"), "{text}");
        // The cold fused pipeline ran and its merge was timed.
        assert!(text.contains("-- phase cold_pipeline"), "{text}");
        assert!(text.contains("-- phase group_merge"), "{text}");
        assert!(text.contains("-- phase plan"), "{text}");
        // Workers reported morsel aggregates: every row and byte of the
        // file went through the pipeline.
        assert!(text.contains("morsels="), "{text}");
        assert!(text.contains(&format!("rows={}", 50_000)), "{text}");
        assert!(text.contains(&format!("bytes={}", data.len())), "{text}");

        // Acceptance: disjoint phase self-times sum to within the wall
        // clock measured around the whole call.
        let out = {
            // Re-run under an explicit sink to get the structured profile.
            let sink = ProfileSink::handle();
            let _scope = ProfileScope::enter(Arc::clone(&sink));
            e.sql("select a2, sum(a1) from r where a1 > 50 group by a2")
                .unwrap()
        };
        let prof = &out.stats.profile;
        assert!(!prof.is_empty());
        assert!(
            prof.total_phase_ns() <= out.stats.elapsed.as_nanos() as u64,
            "phase sum {} exceeds wall {}",
            prof.total_phase_ns(),
            out.stats.elapsed.as_nanos(),
        );
        assert!(wall.as_nanos() > 0);
        // Unprofiled queries carry an empty profile.
        let plain = e.sql("select count(*) from r").unwrap();
        assert!(plain.stats.profile.is_empty());
    }

    #[test]
    fn explain_join_plan() {
        let (d, e) = setup("explainjoin", "1,10\n2,20\n");
        let s_path = d.join("s.csv");
        std::fs::write(&s_path, "1,5\n2,6\n").unwrap();
        e.register_table("s", &s_path).unwrap();
        let text = e
            .explain("select count(*) from r join s on r.a1 = s.a1 where s.a2 < 6")
            .unwrap();
        assert!(text.contains("HashJoin"), "{text}");
        assert!(text.contains("AdaptiveLoad table=s"), "{text}");
        assert!(text.contains("Aggregate [count(*)]"), "{text}");
    }

    #[test]
    fn parallel_pipeline_matches_serial_and_still_loads_store() {
        let dir = std::env::temp_dir().join("nodb_engine_parallel");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..20_000i64 {
            data.push_str(&format!("{},{},{},{}\n", i, i * 2, i % 97, i % 7));
        }
        std::fs::write(&path, &data).unwrap();
        let sqls = [
            "select sum(a1),min(a4),max(a3),avg(a2) from r where a1 > 100 and a1 < 15000",
            "select count(*) from r where a3 = 13",
            "select a1, a2 from r where a1 > 19990 order by a1",
        ];

        // Serial reference.
        let serial = Engine::new(EngineConfig::default().with_threads(1));
        serial.register_table("r", &path).unwrap();
        let reference: Vec<Vec<Vec<Value>>> =
            sqls.iter().map(|s| serial.sql(s).unwrap().rows).collect();

        // Parallel engine with small morsels to force many of them.
        let mut cfg = EngineConfig::default().with_threads(4);
        cfg.morsel_rows = 1000;
        let par = Engine::new(cfg);
        par.register_table("r", &path).unwrap();
        for (sql, expect) in sqls.iter().zip(&reference) {
            let out = par.sql(sql).unwrap();
            assert_eq!(&out.rows, expect, "{sql}");
        }
        let snap = par.counters().snapshot();
        assert!(snap.parallel_pipelines >= 1, "{snap}");
        assert!(snap.morsels_dispatched >= 20, "{snap}");

        // The cold parallel pipeline fed the adaptive store like a serial
        // column load would: referenced columns fully loaded, so a rerun
        // does no file work.
        let info = par.table_info("r").unwrap();
        assert!(!info.loaded_columns.is_empty());
        let before = par.counters().snapshot();
        let again = par.sql(sqls[0]).unwrap();
        assert_eq!(again.rows, reference[0]);
        assert_eq!(par.counters().snapshot().since(&before).file_trips, 0);

        // Join path: parallel partitioned join agrees with serial.
        let s_path = dir.join("s.csv");
        let mut sdata = String::new();
        for i in 0..20_000i64 {
            sdata.push_str(&format!("{},{}\n", (i * 13) % 20_000, i));
        }
        std::fs::write(&s_path, &sdata).unwrap();
        serial.register_table("s", &s_path).unwrap();
        par.register_table("s", &s_path).unwrap();
        let join_sql = "select count(*), sum(s.a2) from r join s on r.a1 = s.a1 where r.a4 = 3";
        let sj = serial.sql(join_sql).unwrap();
        let pj = par.sql(join_sql).unwrap();
        assert_eq!(pj.rows, sj.rows);
    }

    #[test]
    fn cold_grouped_pipeline_matches_serial_and_loads_store() {
        let dir = std::env::temp_dir().join("nodb_engine_parallel_group");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..20_000i64 {
            data.push_str(&format!("{},{},{}\n", i, i * 3, i % 13));
        }
        std::fs::write(&path, &data).unwrap();
        let sqls = [
            "select a3, sum(a2), count(*) from r where a1 < 18000 group by a3 order by a3",
            "select a3, min(a1), max(a2), avg(a1) from r group by a3",
            "select a3, count(*) from r group by a3 order by a3 desc limit 4 offset 2",
        ];
        let serial = Engine::new(EngineConfig::default().with_threads(1));
        serial.register_table("r", &path).unwrap();

        for (q, sql) in sqls.iter().enumerate() {
            // Fresh parallel engine per query so each one takes the fused
            // cold path (GROUP BY gate lifted), small morsels to force many.
            let mut cfg = EngineConfig::default().with_threads(4);
            cfg.morsel_rows = 1000;
            cfg.store_dir = Some(dir.join(format!("store{q}")));
            let par = Engine::new(cfg);
            par.register_table("r", &path).unwrap();
            let expect = serial.sql(sql).unwrap().rows;
            let out = par.sql(sql).unwrap();
            assert_eq!(out.rows, expect, "{sql}");
            // The cold grouped pipeline fed the adaptive store like a
            // serial column load: a rerun does no file work and agrees.
            let before = par.counters().snapshot();
            let again = par.sql(sql).unwrap();
            assert_eq!(again.rows, expect, "warm {sql}");
            let delta = par.counters().snapshot().since(&before);
            assert_eq!(delta.file_trips, 0, "{sql}");
            assert!(par.counters().snapshot().morsels_dispatched >= 20, "{sql}");
        }
    }

    #[test]
    fn cold_projection_pipeline_matches_serial_and_loads_store() {
        let dir = std::env::temp_dir().join("nodb_engine_cold_project");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..20_000i64 {
            data.push_str(&format!("{},{},{}\n", i, i * 2, i % 97));
        }
        std::fs::write(&path, &data).unwrap();
        let sqls = [
            "select a1, a2 from r where a1 > 100 and a1 < 200",
            "select a2, a1 from r where a3 = 13 order by a1 desc limit 7 offset 3",
            "select a1 + a2 from r where a1 > 19900 limit 5",
        ];
        let serial = Engine::new(EngineConfig::default().with_threads(1));
        serial.register_table("r", &path).unwrap();

        for (q, sql) in sqls.iter().enumerate() {
            // Fresh parallel engine per query so each takes the fused cold
            // projection path; small morsels force many of them.
            let mut cfg = EngineConfig::default().with_threads(4);
            cfg.morsel_rows = 1000;
            let par = Engine::new(cfg);
            par.register_table("r", &path).unwrap();
            let expect = serial.sql(sql).unwrap().rows;
            let out = par.sql(sql).unwrap();
            assert_eq!(out.rows, expect, "{sql}");
            let snap = par.counters().snapshot();
            assert!(snap.fused_cold_projections >= 1, "{sql}: {snap}");
            assert!(snap.parallel_pipelines >= 1, "{sql}: {snap}");
            // A rerun is a pure store hit with identical output.
            let before = par.counters().snapshot();
            assert_eq!(par.sql(sql).unwrap().rows, expect, "warm {sql}");
            assert_eq!(par.counters().snapshot().since(&before).file_trips, 0);
            // The fused run left the adaptive store and positional map in
            // exactly the state a serial load produces.
            if q == 0 {
                let si = serial.table_info("r").unwrap();
                let pi = par.table_info("r").unwrap();
                assert_eq!(pi.loaded_columns, si.loaded_columns);
                assert_eq!(pi.store_bytes, si.store_bytes);
                assert_eq!(pi.posmap_bytes, si.posmap_bytes);
            }
        }
    }

    #[test]
    fn cold_join_pipeline_matches_serial_and_loads_both_stores() {
        let dir = std::env::temp_dir().join("nodb_engine_cold_join");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let r_path = dir.join("r.csv");
        let s_path = dir.join("s.csv");
        let mut rd = String::new();
        let mut sd = String::new();
        for i in 0..10_000i64 {
            rd.push_str(&format!("{},{},{}\n", i, i * 2, i % 7));
            sd.push_str(&format!("{},{}\n", (i * 13) % 10_000, i));
        }
        std::fs::write(&r_path, &rd).unwrap();
        std::fs::write(&s_path, &sd).unwrap();
        let sqls = [
            "select count(*), sum(s.a2) from r join s on r.a1 = s.a1 where r.a3 = 3",
            "select r.a2, s.a2 from r join s on r.a1 = s.a1 where s.a2 < 40 limit 9 offset 2",
        ];
        let serial = Engine::new(EngineConfig::default().with_threads(1));
        serial.register_table("r", &r_path).unwrap();
        serial.register_table("s", &s_path).unwrap();

        for (q, sql) in sqls.iter().enumerate() {
            let mut cfg = EngineConfig::default().with_threads(4);
            cfg.morsel_rows = 500;
            let par = Engine::new(cfg);
            par.register_table("r", &r_path).unwrap();
            par.register_table("s", &s_path).unwrap();
            let expect = serial.sql(sql).unwrap().rows;
            let out = par.sql(sql).unwrap();
            assert_eq!(out.rows, expect, "{sql}");
            let snap = par.counters().snapshot();
            assert!(snap.fused_cold_joins >= 1, "{sql}: {snap}");
            assert!(snap.parallel_pipelines >= 1, "{sql}: {snap}");
            // Warm rerun: both sides came out fully loaded, no file work.
            let before = par.counters().snapshot();
            assert_eq!(par.sql(sql).unwrap().rows, expect, "warm {sql}");
            assert_eq!(par.counters().snapshot().since(&before).file_trips, 0);
            if q == 0 {
                for t in ["r", "s"] {
                    let si = serial.table_info(t).unwrap();
                    let pi = par.table_info(t).unwrap();
                    assert_eq!(pi.loaded_columns, si.loaded_columns, "{t}");
                    assert_eq!(pi.store_bytes, si.store_bytes, "{t}");
                    assert_eq!(pi.posmap_bytes, si.posmap_bytes, "{t}");
                }
            }
        }
    }

    #[test]
    fn cold_range_query_builds_index_without_fused_path() {
        // With cracking enabled the fused pipeline stands down, and the
        // very first (cold) range query loads dense, then installs and
        // cracks the partitioned index outside the entry lock.
        let dir = std::env::temp_dir().join("nodb_engine_cold_crack");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..10_000i64 {
            data.push_str(&format!("{},{}\n", (i * 7919) % 10_000, i));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::default().with_threads(4);
        cfg.use_cracking = true;
        let e = Engine::new(cfg);
        e.register_table("r", &path).unwrap();
        let out = e
            .sql("select count(*) from r where a1 > 100 and a1 < 200")
            .unwrap();
        // a1 is a permutation of 0..10000: exactly 99 strictly inside.
        assert_eq!(out.scalar(), Some(&Value::Int(99)));
        let snap = e.counters().snapshot();
        assert_eq!(snap.fused_cold_projections, 0, "{snap}");
        assert_eq!(snap.fused_cold_joins, 0, "{snap}");
        {
            let entry = e.catalog.read().get("r").unwrap();
            assert!(entry.read().store.has_cracked(0), "index built cold");
        }
        // Warm rerun: served from the cracked index, no file work.
        let before = e.counters().snapshot();
        let again = e
            .sql("select count(*) from r where a1 > 100 and a1 < 200")
            .unwrap();
        assert_eq!(again.scalar(), Some(&Value::Int(99)));
        assert_eq!(e.counters().snapshot().since(&before).file_trips, 0);
    }

    #[test]
    fn partial_v2_escalation_still_builds_cracked_index() {
        // Under PartialLoadsV2 + cracking, the monitor's escalation to
        // full column loads must still end with a cracked index (built
        // outside the entry lock by the post-load snapshot path).
        let dir = std::env::temp_dir().join("nodb_engine_v2_crack");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..2_000i64 {
            data.push_str(&format!("{},{}\n", i, i * 2));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::with_strategy(LoadingStrategy::PartialLoadsV2).with_threads(2);
        cfg.use_cracking = true;
        cfg.escalate_after_misses = 2;
        let e = Engine::new(cfg);
        e.register_table("r", &path).unwrap();
        // Widening 2-D boxes keep missing cached fragments (each one
        // extends past the last fragment's bounds) until the monitor
        // escalates to full column loads.
        for q in 0..4i64 {
            let out = e
                .sql(&format!(
                    "select count(*) from r where a1 > {} and a2 < {}",
                    10 - q,
                    3000 + q
                ))
                .unwrap();
            assert!(matches!(out.scalar(), Some(Value::Int(_))), "query {q}");
        }
        let entry = e.catalog.read().get("r").unwrap();
        let entry = entry.read();
        assert!(entry.store.has_full(0), "escalated to full columns");
        assert!(entry.store.has_cracked(0), "index built after escalation");
    }

    #[test]
    fn warm_parallel_group_by_matches_serial_across_threads() {
        let dir = std::env::temp_dir().join("nodb_engine_warm_group");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..8_000i64 {
            data.push_str(&format!("{},{},{}\n", i % 31, i, i % 7));
        }
        std::fs::write(&path, &data).unwrap();
        let sql = "select a1, sum(a2), count(*) from r where a3 < 5 group by a1";
        let mut reference: Option<Vec<Vec<Value>>> = None;
        for threads in [1, 2, 5] {
            let mut cfg = EngineConfig::default().with_threads(threads);
            cfg.morsel_rows = 500;
            cfg.group_partitions = if threads == 5 { 4 } else { 0 };
            let e = Engine::new(cfg);
            e.register_table("r", &path).unwrap();
            // Warm the store first so the grouped kernel (not the cold
            // pipeline) is what executes the second time.
            e.sql(sql).unwrap();
            let out = e.sql(sql).unwrap();
            match &reference {
                None => reference = Some(out.rows),
                Some(r) => assert_eq!(&out.rows, r, "threads={threads}"),
            }
            if threads > 1 {
                assert!(e.counters().snapshot().parallel_pipelines >= 1);
            }
        }
    }

    #[test]
    fn small_joins_stay_serial_under_threshold() {
        let dir = std::env::temp_dir().join("nodb_engine_join_threshold");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        let r = dir.join("r.csv");
        let s = dir.join("s.csv");
        let mut rd = String::new();
        let mut sd = String::new();
        for i in 0..4_000i64 {
            rd.push_str(&format!("{},{}\n", i, i * 2));
            sd.push_str(&format!("{},{}\n", (i * 13) % 4000, i));
        }
        std::fs::write(&r, &rd).unwrap();
        std::fs::write(&s, &sd).unwrap();
        let run = |join_min_rows: usize| {
            let mut cfg = EngineConfig::default().with_threads(4);
            // Morsels bigger than the table: the post-join aggregate stays
            // serial, so `parallel_pipelines` counts only the join's gate.
            cfg.morsel_rows = 100_000;
            cfg.join_min_rows = join_min_rows;
            let e = Engine::new(cfg);
            e.register_table("r", &r).unwrap();
            e.register_table("s", &s).unwrap();
            let sql = "select count(*), sum(s.a2) from r join s on r.a1 = s.a1";
            let out = e.sql(sql).unwrap();
            let before = e.counters().snapshot();
            let again = e.sql(sql).unwrap();
            assert_eq!(again.rows, out.rows);
            (out.rows, e.counters().snapshot().since(&before))
        };
        // Threshold above the input: the warm join runs serial.
        let (rows_hi, delta_hi) = run(1_000_000);
        assert_eq!(delta_hi.parallel_pipelines, 0);
        // Threshold below the input: the warm join goes parallel, with
        // identical results (serial fallback vs partitioned build).
        let (rows_lo, delta_lo) = run(1_000);
        assert!(delta_lo.parallel_pipelines >= 1);
        assert_eq!(rows_lo, rows_hi);
    }

    #[test]
    fn racing_cracked_range_queries_agree() {
        // Warm range queries under `use_cracking` take the short-lock
        // fast path and crack the partitioned index concurrently; every
        // racing query must still count exactly its range.
        let dir = std::env::temp_dir().join("nodb_engine_crack_race");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..30_000i64 {
            data.push_str(&format!("{},{}\n", (i * 6151) % 30_000, i));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::default().with_threads(4);
        cfg.use_cracking = true;
        let e = Arc::new(Engine::new(cfg));
        e.register_table("r", &path).unwrap();
        e.sql("select sum(a1) from r").unwrap(); // load the column
        let mut handles = Vec::new();
        for t in 0..8i64 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                for q in 0..6i64 {
                    let lo = (t * 2_311 + q * 4_799) % 25_000;
                    let hi = lo + 2_000;
                    let out = e
                        .sql(&format!(
                            "select count(*) from r where a1 > {lo} and a1 < {hi}"
                        ))
                        .unwrap();
                    // a1 is a permutation of 0..30000: exactly hi-lo-1
                    // values fall strictly inside the range.
                    assert_eq!(out.rows[0][0], Value::Int(hi - lo - 1), "({lo},{hi})");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // No racing query re-read the file: everything came from the
        // store and the cracked index.
        assert_eq!(e.counters().snapshot().file_trips, 1);
    }

    #[test]
    fn concurrent_queries_are_safe() {
        let (_d, e) = setup("concurrent", DATA);
        let e = Arc::new(e);
        let mut handles = Vec::new();
        for t in 0..8 {
            let e = Arc::clone(&e);
            handles.push(std::thread::spawn(move || {
                let col = ["a1", "a2", "a3", "a4"][t % 4];
                let out = e.sql(&format!("select sum({col}) from r")).unwrap();
                out.rows[0][0].clone()
            }));
        }
        let results: Vec<Value> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // a1: 10, a2: 60, a3: 510, a4: 39 — verify one of each.
        assert!(results.contains(&Value::Int(10)));
        assert!(results.contains(&Value::Int(60)));
        assert!(results.contains(&Value::Int(510)));
        assert!(results.contains(&Value::Int(39)));
    }

    /// Regression: an over-budget charge from inside a fused cold scan
    /// runs the pool's reclaimer on a scan worker while the scan's
    /// driver holds the table's entry write lock. `release_memory` must
    /// skip that locked entry (`try_write`) instead of blocking on it —
    /// blocking deadlocked the scan against its own reclaim forever.
    /// The offending query sheds with a typed error; the engine and the
    /// table keep serving.
    #[test]
    fn over_budget_cold_scan_reclaims_without_deadlocking() {
        let dir = std::env::temp_dir().join("nodb_engine_mem_cold_scan");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        let mut data = String::new();
        for i in 0..20_000i64 {
            data.push_str(&format!("{},{}\n", i % 8192, i));
        }
        std::fs::write(&path, &data).unwrap();
        let mut cfg = EngineConfig::default().with_threads(4);
        cfg.morsel_rows = 2048; // many morsels: charges come from workers
        cfg.engine_mem_bytes = Some(8 * 1024); // far below the group table
        let e = Arc::new(Engine::new(cfg));
        e.register_table("r", &path).unwrap();
        let s = e.session(); // installs the degradation-ladder reclaimer
        let err = s.sql("select a1, sum(a2) from r group by a1").unwrap_err();
        assert!(matches!(err, Error::ResourceExhausted(_)), "got {err:?}");
        // The shed killed one query, not the engine: the same table
        // still answers, and the refused reservation was handed back.
        let out = s.sql("select count(*) from r").unwrap();
        assert_eq!(out.rows, vec![vec![Value::Int(20_000)]]);
        assert_eq!(e.memory_pool().reserved(), 0);
    }

    /// Like [`setup`] but with the (opt-in) result cache switched on.
    fn setup_cached(name: &str, content: &str) -> (PathBuf, Engine) {
        let dir = std::env::temp_dir().join(format!("nodb_engine_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.csv");
        std::fs::write(&path, content).unwrap();
        // ColumnLoads keeps referenced columns fully resident, so family
        // (subsumption) entries can be captured; partial strategies only
        // get exact-repeat hits.
        let mut cfg = EngineConfig::with_strategy(LoadingStrategy::ColumnLoads).with_threads(1);
        cfg.store_dir = Some(dir.join("store"));
        cfg.result_cache_bytes = 1 << 20;
        let engine = Engine::new(cfg);
        engine.register_table("r", &path).unwrap();
        (dir, engine)
    }

    #[test]
    fn repeat_query_hits_the_result_cache() {
        let (_d, e) = setup_cached("rc_repeat", DATA);
        let sql = "select a1, a3 from r where a1 > 0 and a1 < 4 order by a1 desc limit 2";
        let cold = e.sql(sql).unwrap();
        let s1 = e.counters().snapshot();
        assert_eq!(s1.result_cache_misses, 1);
        assert_eq!(s1.result_cache_hits, 0);
        let warm = e.sql(sql).unwrap();
        let s2 = e.counters().snapshot().since(&s1);
        assert_eq!(s2.result_cache_hits, 1);
        assert_eq!(s2.result_cache_misses, 0);
        assert_eq!(warm.rows, cold.rows);
        assert_eq!(warm.columns, cold.columns);
        // Aggregates cache their final merged result too.
        let agg = "select a4, count(*) from r group by a4 order by a4";
        let cold_agg = e.sql(agg).unwrap();
        let warm_agg = e.sql(agg).unwrap();
        assert_eq!(warm_agg.rows, cold_agg.rows);
        assert!(e.counters().snapshot().result_cache_hits >= 2);
    }

    #[test]
    fn subsumed_range_is_answered_from_a_wider_cached_result() {
        let (_d, e) = setup_cached("rc_subsume", DATA);
        // Wide σ range: installs a family entry recording the interval.
        e.sql("select a1, a2 from r where a1 > 0 and a1 < 5")
            .unwrap();
        // Strictly contained range with a different window and ordering:
        // served by re-filtering the cached rows, never re-executed.
        let narrow = "select a1, a2 from r where a1 > 1 and a1 < 4 order by a1 desc limit 1";
        let before = e.counters().snapshot();
        let out = e.sql(narrow).unwrap();
        let delta = e.counters().snapshot().since(&before);
        assert_eq!(delta.result_cache_subsumed_hits, 1);
        assert_eq!(out.rows, vec![vec![Value::Int(3), Value::Int(13)]]);
        // Must be byte-identical to a cold engine answering the same query.
        let (_d2, cold) = setup("rc_subsume_cold", DATA);
        let reference = cold.sql(narrow).unwrap();
        assert_eq!(out.rows, reference.rows);
        assert_eq!(out.columns, reference.columns);
    }

    #[test]
    fn replaced_result_table_never_serves_stale_cached_rows() {
        let (_d, e) = setup_cached("rc_replace", DATA);
        let small = e.sql("select a1 from r where a1 < 2").unwrap();
        e.register_result("t", &small).unwrap();
        let q = "select a1 from t order by a1";
        let first = e.sql(q).unwrap();
        assert_eq!(first.rows, vec![vec![Value::Int(0)], vec![Value::Int(1)]]);
        assert_eq!(e.sql(q).unwrap().rows, first.rows); // cached
        assert!(e.counters().snapshot().result_cache_hits >= 1);
        // Replace `t` wholesale: the repeat query must see the new rows.
        let big = e.sql("select a1 from r where a1 >= 3").unwrap();
        e.register_result("t", &big).unwrap();
        let after = e.sql(q).unwrap();
        assert_eq!(after.rows, vec![vec![Value::Int(3)], vec![Value::Int(4)]]);
        // And dropping the table purges its entries outright.
        let live = e.result_cache().len();
        assert!(live > 0);
        assert!(e.unregister_table("t"));
        let out = e.sql(q);
        assert!(out.is_err(), "query against a dropped table must fail");
        assert!(e.result_cache().len() < live);
    }

    #[test]
    fn file_edit_invalidates_cached_results() {
        let (dir, e) = setup_cached("rc_fileedit", DATA);
        let q = "select sum(a1) from r where a1 > 0 and a1 < 5";
        assert_eq!(e.sql(q).unwrap().scalar(), Some(&Value::Int(10)));
        assert_eq!(e.sql(q).unwrap().scalar(), Some(&Value::Int(10)));
        assert!(e.counters().snapshot().result_cache_hits >= 1);
        // Rewrite the raw file: the fingerprint check bumps the schema
        // epoch, so every cached result over `r` is unservable.
        std::fs::write(dir.join("r.csv"), "0,1,2,3\n4,1,2,3\n").unwrap();
        assert_eq!(e.sql(q).unwrap().scalar(), Some(&Value::Int(4)));
    }
}
