//! The engine plan cache.
//!
//! Exploration workloads (Figures 1/3/4) re-fire the same query shapes
//! over and over; parsing and planning them every time is pure overhead
//! once the data is warm. The cache maps *normalized* SQL text to a
//! resolved [`Plan`] plus the schema epochs it was resolved against, so
//! even un-prepared repeat queries skip the whole SQL front end. A cached
//! plan is only served while every referenced table still has the same
//! schema epoch — editing a raw file bumps the epoch (schema re-inference)
//! and invalidates exactly the plans that depended on it.
//!
//! Hits and misses are counted in
//! [`WorkCounters::plan_cache_hits`]/[`plan_cache_misses`], next to the
//! paper's work-avoided counters.
//!
//! [`WorkCounters::plan_cache_hits`]: nodb_types::WorkCounters::plan_cache_hits
//! [`plan_cache_misses`]: nodb_types::WorkCounters::plan_cache_misses

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use nodb_sql::Plan;

/// `(lowercased table name, schema epoch)` dependencies of a cached plan.
pub type PlanDeps = Vec<(String, u64)>;

/// Normalize SQL text into a cache key: outside single-quoted literals,
/// letters fold to lower case and whitespace runs (and `--` comments)
/// collapse to one space, so `SELECT  A1  FROM r` and `select a1 from r`
/// share a plan while `'Bob'` and `'BOB'` stay distinct.
pub fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut in_str = false;
    let mut pending_space = false;
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if c == '\'' {
                // `''` is an escaped quote; consume its pair verbatim.
                if chars.peek() == Some(&'\'') {
                    out.push(chars.next().expect("peeked"));
                } else {
                    in_str = false;
                }
            }
            continue;
        }
        match c {
            '\'' => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                in_str = true;
                out.push(c);
            }
            '-' if chars.peek() == Some(&'-') => {
                // Line comment: skip to end of line, acts as whitespace.
                for c in chars.by_ref() {
                    if c == '\n' {
                        break;
                    }
                }
                pending_space = true;
            }
            c if c.is_whitespace() => pending_space = true,
            c => {
                if pending_space && !out.is_empty() {
                    out.push(' ');
                }
                pending_space = false;
                out.push(c.to_ascii_lowercase());
            }
        }
    }
    out
}

/// One cached plan plus the schema epochs it depends on.
#[derive(Clone)]
struct CachedPlan {
    plan: Arc<Plan>,
    /// `(lowercased table name, schema_epoch at plan time)`.
    deps: Vec<(String, u64)>,
    /// Last-touch tick for LRU eviction.
    last_used: u64,
}

/// Bounded LRU map from normalized SQL to resolved plans.
pub struct PlanCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

struct Inner {
    map: HashMap<String, CachedPlan>,
    tick: u64,
}

impl PlanCache {
    /// Cache holding at most `capacity` plans (0 disables caching).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
            }),
            capacity,
        }
    }

    /// Look up `key`; the cached plan is returned only when
    /// `current_epoch` confirms every dependency's schema epoch is
    /// unchanged (stale entries are dropped). The epoch callback runs
    /// file-fingerprint checks, so it is invoked *outside* the cache
    /// mutex — concurrent sessions must not serialize on each other's
    /// file stats.
    pub fn get(
        &self,
        key: &str,
        mut current_epoch: impl FnMut(&str) -> Option<u64>,
    ) -> Option<(Arc<Plan>, PlanDeps)> {
        let (plan, deps) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.map.get_mut(key)?;
            entry.last_used = tick;
            (Arc::clone(&entry.plan), entry.deps.clone())
        };
        let fresh = deps
            .iter()
            .all(|(table, epoch)| current_epoch(table) == Some(*epoch));
        if fresh {
            Some((plan, deps))
        } else {
            self.inner.lock().map.remove(key);
            None
        }
    }

    /// Insert a plan with its schema-epoch dependencies, evicting the
    /// least-recently-used entry when full.
    pub fn insert(&self, key: String, plan: Arc<Plan>, deps: Vec<(String, u64)>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(lru) = inner
                .map
                .iter()
                .min_by_key(|(_, v)| v.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&lru);
            }
        }
        inner.map.insert(
            key,
            CachedPlan {
                plan,
                deps,
                last_used: tick,
            },
        );
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every cached plan.
    pub fn clear(&self) {
        self.inner.lock().map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_sql::plan_sql;
    use nodb_types::Schema;
    use std::collections::HashMap as Map;

    fn a_plan() -> Arc<Plan> {
        let mut schemas: Map<String, Schema> = Map::new();
        schemas.insert("t".into(), Schema::ints(2));
        Arc::new(plan_sql("select a1 from t", &schemas).unwrap())
    }

    #[test]
    fn normalization_folds_case_and_whitespace_outside_strings() {
        assert_eq!(
            normalize_sql("SELECT  A1\n FROM r -- trailing\n WHERE x='Bob''s'"),
            "select a1 from r where x='Bob''s'"
        );
        assert_eq!(normalize_sql("  select 1  "), "select 1");
        assert_eq!(
            normalize_sql("select a from t"),
            normalize_sql("SELECT\ta\nFROM\tt")
        );
        assert_ne!(
            normalize_sql("select * from t where s = 'A'"),
            normalize_sql("select * from t where s = 'a'")
        );
    }

    #[test]
    fn hit_only_while_epochs_match() {
        let cache = PlanCache::new(4);
        cache.insert("k".into(), a_plan(), vec![("t".into(), 1)]);
        assert!(cache.get("k", |_| Some(1)).is_some());
        // Epoch moved on: entry is stale and gets dropped.
        assert!(cache.get("k", |_| Some(2)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn missing_dependency_counts_as_stale() {
        let cache = PlanCache::new(4);
        cache.insert("k".into(), a_plan(), vec![("t".into(), 1)]);
        assert!(cache.get("k", |_| None).is_none(), "table dropped");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let cache = PlanCache::new(2);
        cache.insert("a".into(), a_plan(), vec![("t".into(), 1)]);
        cache.insert("b".into(), a_plan(), vec![("t".into(), 1)]);
        // Touch `a` so `b` is the LRU.
        assert!(cache.get("a", |_| Some(1)).is_some());
        cache.insert("c".into(), a_plan(), vec![("t".into(), 1)]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", |_| Some(1)).is_none(), "b evicted");
        assert!(cache.get("a", |_| Some(1)).is_some());
        assert!(cache.get("c", |_| Some(1)).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = PlanCache::new(0);
        cache.insert("a".into(), a_plan(), vec![]);
        assert!(cache.is_empty());
        assert!(cache.get("a", |_| Some(1)).is_none());
    }
}
