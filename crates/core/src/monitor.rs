//! Workload monitor and robustness advisor (paper §5.5).
//!
//! "The challenge for providing a robust performance relates to a continuous
//! process to monitor the system performance and the workload trends such as
//! we can continuously adjust critical decisions." The failure mode the
//! paper calls out for partial loading is a workload that keeps *missing*
//! the cached fragments (each query fetches a sliver the store doesn't
//! cover), paying a file trip every time — there, a full column load would
//! have been cheaper. The [`TableMonitor`] tracks per-column-set fragment
//! hit/miss streaks and advises escalation to full column loads once a miss
//! streak crosses a threshold.

use std::collections::HashMap;

/// Per-table workload statistics and advice state.
#[derive(Debug, Default)]
pub struct TableMonitor {
    /// Total queries touching this table.
    pub queries: u64,
    /// Queries answered entirely from the adaptive store.
    pub store_hits: u64,
    /// Queries that had to go back to the raw file.
    pub file_misses: u64,
    /// Current consecutive-miss streak per referenced column set.
    miss_streaks: HashMap<Vec<usize>, u32>,
    /// Column sets already escalated to full loading.
    escalated: HashMap<Vec<usize>, bool>,
}

impl TableMonitor {
    /// Record that a query over `cols` was served from the store.
    pub fn record_hit(&mut self, cols: &[usize]) {
        self.queries += 1;
        self.store_hits += 1;
        self.miss_streaks.insert(normalize(cols), 0);
    }

    /// Record that a query over `cols` had to touch the raw file.
    pub fn record_miss(&mut self, cols: &[usize]) {
        self.queries += 1;
        self.file_misses += 1;
        *self.miss_streaks.entry(normalize(cols)).or_insert(0) += 1;
    }

    /// Should loading for `cols` escalate from partial fragments to full
    /// column loads? True once the consecutive miss streak reaches
    /// `threshold` (and sticky from then on).
    pub fn should_escalate(&mut self, cols: &[usize], threshold: u32) -> bool {
        let key = normalize(cols);
        if self.escalated.get(&key).copied().unwrap_or(false) {
            return true;
        }
        let streak = self.miss_streaks.get(&key).copied().unwrap_or(0);
        if threshold > 0 && streak >= threshold {
            self.escalated.insert(key, true);
            true
        } else {
            false
        }
    }

    /// Fraction of queries answered from the store.
    pub fn hit_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.store_hits as f64 / self.queries as f64
        }
    }
}

fn normalize(cols: &[usize]) -> Vec<usize> {
    let mut v = cols.to_vec();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_after_threshold_misses() {
        let mut m = TableMonitor::default();
        m.record_miss(&[0, 1]);
        assert!(!m.should_escalate(&[0, 1], 3));
        m.record_miss(&[1, 0]); // column-set order does not matter
        assert!(!m.should_escalate(&[0, 1], 3));
        m.record_miss(&[0, 1]);
        assert!(m.should_escalate(&[0, 1], 3));
    }

    #[test]
    fn hit_resets_streak() {
        let mut m = TableMonitor::default();
        m.record_miss(&[0]);
        m.record_miss(&[0]);
        m.record_hit(&[0]);
        m.record_miss(&[0]);
        assert!(!m.should_escalate(&[0], 3));
    }

    #[test]
    fn escalation_is_sticky() {
        let mut m = TableMonitor::default();
        for _ in 0..3 {
            m.record_miss(&[2]);
        }
        assert!(m.should_escalate(&[2], 3));
        m.record_hit(&[2]);
        assert!(m.should_escalate(&[2], 3), "stays escalated");
    }

    #[test]
    fn distinct_column_sets_tracked_separately() {
        let mut m = TableMonitor::default();
        for _ in 0..5 {
            m.record_miss(&[0]);
        }
        assert!(m.should_escalate(&[0], 3));
        assert!(!m.should_escalate(&[1], 3));
    }

    #[test]
    fn zero_threshold_never_escalates() {
        let mut m = TableMonitor::default();
        m.record_miss(&[0]);
        assert!(!m.should_escalate(&[0], 0));
    }

    #[test]
    fn hit_rate_reported() {
        let mut m = TableMonitor::default();
        assert_eq!(m.hit_rate(), 0.0);
        m.record_hit(&[0]);
        m.record_miss(&[0]);
        assert!((m.hit_rate() - 0.5).abs() < 1e-9);
    }
}
