//! The engine result cache: answering the paper's title question.
//!
//! "Here are my Data Files. Here are my Queries. Where are my Results?" —
//! until now the engine threw every result away after the last batch was
//! fetched, rescanning even for byte-identical dashboard refreshes. This
//! module keeps completed results around as first-class data, under a
//! byte-budget LRU, and serves two kinds of reuse:
//!
//! * **Exact repeats** — a query whose fully bound [`Plan`] fingerprints
//!   identically to a cached one returns the cached final rows verbatim.
//!   Every shape qualifies (aggregates and GROUP BY cache their final
//!   merged rows; joins cache the post-join output).
//! * **Subsumption** — a single-table scalar SELECT whose σ range on one
//!   column is *contained* in a cached entry's recorded [`Interval`] is
//!   answered by re-filtering the cached qualifying rows, the same way
//!   `CrackedColumn` piece metadata bounds a range without rescanning.
//!   The cached rows are kept in scan order, so re-running the engine's
//!   own filter → order → window → project pipeline over them produces
//!   output byte-identical to a fresh scan.
//!
//! Invalidation reuses the [`plan_cache`](crate::plan_cache) scheme
//! verbatim: every entry records the `(table, schema_epoch)` set it was
//! computed against ([`PlanDeps`]), and a lookup only returns an entry
//! after re-confirming every epoch via the caller's callback (which runs
//! the file-fingerprint check, *outside* the cache mutex). Epochs are
//! globally unique (`catalog::next_epoch`), so a table dropped and
//! re-registered — or replaced by `register_result` / CTAS — can never
//! alias an old epoch. On top of the epoch check, the engine explicitly
//! [`purge_table`](ResultCache::purge_table)s entries on
//! `register_result` and `unregister_table`, freeing their bytes eagerly.
//!
//! Keys are *plan* fingerprints, not SQL text: the `Debug` rendering of a
//! fully bound [`Plan`] is deterministic and complete, so `SELECT  A1
//! FROM r` and `select a1 from r` share an entry (the plan cache's text
//! normalization happens upstream), and a prepared statement bound to the
//! same constants as an inline query lands on the same entry too.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use nodb_sql::Plan;
use nodb_types::{ColumnData, Conjunction, Interval, Value};

use crate::plan_cache::PlanDeps;

/// Fingerprint of a fully bound plan: the complete, deterministic cache
/// key for its result. (`Display` is the human EXPLAIN rendering and not
/// collision-free; `Debug` includes every field.)
pub fn plan_fingerprint(plan: &Plan) -> String {
    format!("{plan:?}")
}

/// Fingerprint of the *family* a subsumable plan belongs to: the plan
/// with its filter, ORDER BY, LIMIT and OFFSET cleared. Two queries in
/// the same family differ only in their σ range, ordering and window —
/// exactly what subsumption re-derives from the cached superset rows
/// (which are kept in scan order, before any of the three apply).
pub fn family_fingerprint(plan: &Plan) -> String {
    let mut base = plan.clone();
    base.filter = Conjunction::always();
    base.order_by = Vec::new();
    base.limit = None;
    base.offset = None;
    format!("{base:?}")
}

/// The σ constraint a subsumable plan puts on its table: `None` for an
/// unconstrained scan, or the single constrained column and its interval.
pub type RangeConstraint = Option<(usize, Interval)>;

/// The single-column σ range of a plan's filter, when the plan is
/// subsumption-eligible: single table (no join), no aggregation or
/// grouping, and a filter expressible as a selection box constraining at
/// most one column. Returns `None` (ineligible) otherwise.
pub fn subsumable_constraint(plan: &Plan) -> Option<RangeConstraint> {
    if plan.join.is_some() || plan.is_aggregate() || !plan.group_by.is_empty() {
        return None;
    }
    let bx = plan.filter.to_box()?;
    match bx.by_col.len() {
        0 => Some(None),
        1 => {
            let (col, iv) = bx.by_col.into_iter().next().expect("len checked");
            Some(Some((col, iv)))
        }
        _ => None,
    }
}

/// One cached payload: either the final output rows of a plan, or the
/// plan family's qualifying input rows awaiting a re-filter.
enum Payload {
    /// Final output rows of an exact plan fingerprint.
    Rows(Arc<Vec<Vec<Value>>>),
    /// Scan-order qualifying rows of a plan family, as dense columns
    /// keyed by the plan's combined ordinals, plus the σ range they
    /// satisfy. A narrower query re-filters these instead of rescanning.
    Filtered {
        cols: BTreeMap<usize, Arc<ColumnData>>,
        n_rows: usize,
        constraint: RangeConstraint,
    },
}

struct Entry {
    payload: Payload,
    /// `(lowercased table, schema epoch)` the result was computed against.
    deps: PlanDeps,
    /// Estimated heap footprint, charged against the byte budget.
    bytes: usize,
    /// Last-touch tick for LRU eviction.
    last_used: u64,
}

struct Inner {
    map: HashMap<String, Entry>,
    tick: u64,
    bytes: usize,
}

/// Byte-budget LRU cache from plan fingerprints to materialised results.
///
/// A budget of 0 disables the cache: lookups miss, inserts are dropped.
pub struct ResultCache {
    inner: Mutex<Inner>,
    budget_bytes: usize,
    max_entries: usize,
}

/// Estimated heap bytes of materialised result rows.
pub fn rows_bytes(rows: &[Vec<Value>]) -> usize {
    rows.iter()
        .map(|r| {
            std::mem::size_of::<Vec<Value>>()
                + r.iter()
                    .map(|v| {
                        std::mem::size_of::<Value>()
                            + match v {
                                Value::Str(s) => s.len(),
                                _ => 0,
                            }
                    })
                    .sum::<usize>()
        })
        .sum()
}

/// Estimated heap bytes of a dense column map.
pub fn cols_bytes(cols: &BTreeMap<usize, Arc<ColumnData>>) -> usize {
    cols.values().map(|c| c.approx_bytes()).sum()
}

impl ResultCache {
    /// Cache with a byte budget and an entry cap; a zero budget or cap
    /// disables caching.
    pub fn new(budget_bytes: usize, max_entries: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                tick: 0,
                bytes: 0,
            }),
            budget_bytes,
            max_entries,
        }
    }

    /// Whether the cache can ever hold anything. The engine skips all
    /// result-cache work (lookups, counters, capture) when this is false,
    /// so the disabled-by-default configuration costs nothing.
    pub fn enabled(&self) -> bool {
        self.budget_bytes > 0 && self.max_entries > 0
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes currently cached.
    pub fn bytes_used(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Drop every entry.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }

    /// Drop every entry that depends on `table` (any case). Called on
    /// `register_result` / `unregister_table`, eagerly freeing bytes the
    /// epoch check would only reclaim lazily.
    pub fn purge_table(&self, table: &str) {
        let t = table.to_ascii_lowercase();
        let mut inner = self.inner.lock();
        let doomed: Vec<String> = inner
            .map
            .iter()
            .filter(|(_, e)| e.deps.iter().any(|(dep, _)| *dep == t))
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            if let Some(e) = inner.map.remove(&k) {
                inner.bytes -= e.bytes;
            }
        }
    }

    /// Look up the final rows of an exact plan fingerprint. Returned only
    /// when `current_epoch` confirms every dependency is unchanged; stale
    /// entries are dropped. The epoch callback runs file-fingerprint
    /// checks, so it is invoked outside the cache mutex.
    pub fn get_exact(
        &self,
        key: &str,
        current_epoch: impl FnMut(&str) -> Option<u64>,
    ) -> Option<Arc<Vec<Vec<Value>>>> {
        match self.get_validated(key, current_epoch)? {
            Payload::Rows(rows) => Some(rows),
            Payload::Filtered { .. } => None,
        }
    }

    /// Look up a plan family's cached superset for a query constrained to
    /// `wanted`. Serves only when containment is proven: the entry is
    /// unconstrained, or constrains the same column with an interval that
    /// contains the wanted one. For an entry cached unconstrained, the
    /// wanted column must be among the cached columns (the re-filter
    /// needs its values).
    pub fn get_subsumed(
        &self,
        family_key: &str,
        wanted: &RangeConstraint,
        current_epoch: impl FnMut(&str) -> Option<u64>,
    ) -> Option<(BTreeMap<usize, Arc<ColumnData>>, usize)> {
        let payload = self.get_validated(family_key, current_epoch)?;
        let Payload::Filtered {
            cols,
            n_rows,
            constraint,
        } = payload
        else {
            return None;
        };
        let contains = match (&constraint, wanted) {
            (None, None) => true,
            (None, Some((col, _))) => cols.contains_key(col),
            (Some(_), None) => false,
            (Some((have_col, have_iv)), Some((want_col, want_iv))) => {
                have_col == want_col && want_iv.is_subset_of(have_iv)
            }
        };
        contains.then_some((cols, n_rows))
    }

    /// Shared lookup: touch the entry, then validate its epochs outside
    /// the mutex; drop it if stale.
    fn get_validated(
        &self,
        key: &str,
        mut current_epoch: impl FnMut(&str) -> Option<u64>,
    ) -> Option<Payload> {
        let (payload, deps) = {
            let mut inner = self.inner.lock();
            inner.tick += 1;
            let tick = inner.tick;
            let entry = inner.map.get_mut(key)?;
            entry.last_used = tick;
            let payload = match &entry.payload {
                Payload::Rows(rows) => Payload::Rows(Arc::clone(rows)),
                Payload::Filtered {
                    cols,
                    n_rows,
                    constraint,
                } => Payload::Filtered {
                    cols: cols.clone(),
                    n_rows: *n_rows,
                    constraint: constraint.clone(),
                },
            };
            (payload, entry.deps.clone())
        };
        let fresh = deps
            .iter()
            .all(|(table, epoch)| current_epoch(table) == Some(*epoch));
        if fresh {
            Some(payload)
        } else {
            let mut inner = self.inner.lock();
            if let Some(e) = inner.map.remove(key) {
                inner.bytes -= e.bytes;
            }
            None
        }
    }

    /// Cache the final rows of an exact plan fingerprint. Returns the
    /// number of entries evicted to make room (0 when the payload alone
    /// exceeds the budget and is not cached at all).
    pub fn insert_exact(&self, key: String, rows: Arc<Vec<Vec<Value>>>, deps: PlanDeps) -> u64 {
        let bytes = rows_bytes(&rows);
        self.insert(key, Payload::Rows(rows), deps, bytes)
    }

    /// Cache a plan family's qualifying rows with the σ range they
    /// satisfy. Returns the number of entries evicted to make room.
    pub fn insert_filtered(
        &self,
        family_key: String,
        cols: BTreeMap<usize, Arc<ColumnData>>,
        n_rows: usize,
        constraint: RangeConstraint,
        deps: PlanDeps,
    ) -> u64 {
        let bytes = cols_bytes(&cols);
        self.insert(
            family_key,
            Payload::Filtered {
                cols,
                n_rows,
                constraint,
            },
            deps,
            bytes,
        )
    }

    /// Insert under the byte budget and entry cap, evicting LRU entries
    /// until both hold. Oversized payloads are rejected outright.
    fn insert(&self, key: String, payload: Payload, deps: PlanDeps, bytes: usize) -> u64 {
        if !self.enabled() || bytes > self.budget_bytes {
            return 0;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.remove(&key) {
            inner.bytes -= old.bytes;
        }
        let mut evicted = 0u64;
        while !inner.map.is_empty()
            && (inner.bytes + bytes > self.budget_bytes || inner.map.len() >= self.max_entries)
        {
            let lru = inner
                .map
                .iter()
                .min_by_key(|(_, v)| v.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty");
            let e = inner.map.remove(&lru).expect("just found");
            inner.bytes -= e.bytes;
            evicted += 1;
        }
        inner.bytes += bytes;
        inner.map.insert(
            key,
            Entry {
                payload,
                deps,
                bytes,
                last_used: tick,
            },
        );
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_types::{Bound, DataType};

    fn rows(n: usize) -> Arc<Vec<Vec<Value>>> {
        Arc::new((0..n).map(|i| vec![Value::Int(i as i64)]).collect())
    }

    fn deps_t(epoch: u64) -> PlanDeps {
        vec![("t".into(), epoch)]
    }

    #[test]
    fn exact_hit_only_while_epochs_match() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_exact("k".into(), rows(3), deps_t(7));
        assert!(c.get_exact("k", |_| Some(7)).is_some());
        assert!(c.get_exact("k", |_| Some(8)).is_none(), "epoch moved on");
        assert!(c.is_empty(), "stale entry dropped");
        assert_eq!(c.bytes_used(), 0, "stale bytes refunded");
    }

    #[test]
    fn missing_dependency_counts_as_stale() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_exact("k".into(), rows(3), deps_t(7));
        assert!(c.get_exact("k", |_| None).is_none(), "table dropped");
        assert!(c.is_empty());
    }

    #[test]
    fn purge_table_is_case_insensitive_and_refunds_bytes() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_exact("a".into(), rows(2), deps_t(1));
        c.insert_exact("b".into(), rows(2), vec![("other".into(), 1)]);
        c.purge_table("T");
        assert_eq!(c.len(), 1, "only t-dependent entry purged");
        assert!(c.get_exact("b", |_| Some(1)).is_some());
    }

    #[test]
    fn zero_budget_disables() {
        let c = ResultCache::new(0, 16);
        assert!(!c.enabled());
        c.insert_exact("k".into(), rows(3), deps_t(1));
        assert!(c.is_empty());
        assert!(c.get_exact("k", |_| Some(1)).is_none());
    }

    #[test]
    fn eviction_keeps_bytes_under_budget() {
        // Each 100-int-row payload is ~3.2 KiB; a 8 KiB budget holds two.
        let one = rows_bytes(&rows(100));
        let c = ResultCache::new(one * 2 + one / 2, 16);
        assert_eq!(c.insert_exact("a".into(), rows(100), deps_t(1)), 0);
        assert_eq!(c.insert_exact("b".into(), rows(100), deps_t(1)), 0);
        // Touch `a` so `b` is LRU, then force an eviction.
        assert!(c.get_exact("a", |_| Some(1)).is_some());
        assert_eq!(c.insert_exact("c".into(), rows(100), deps_t(1)), 1);
        assert!(c.bytes_used() <= c.budget_bytes());
        assert!(c.get_exact("b", |_| Some(1)).is_none(), "b evicted");
        assert!(c.get_exact("a", |_| Some(1)).is_some());
        assert!(c.get_exact("c", |_| Some(1)).is_some());
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let c = ResultCache::new(64, 16);
        assert_eq!(c.insert_exact("k".into(), rows(1000), deps_t(1)), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn entry_cap_evicts_lru() {
        let c = ResultCache::new(1 << 20, 2);
        c.insert_exact("a".into(), rows(1), deps_t(1));
        c.insert_exact("b".into(), rows(1), deps_t(1));
        assert!(c.get_exact("a", |_| Some(1)).is_some());
        c.insert_exact("c".into(), rows(1), deps_t(1));
        assert_eq!(c.len(), 2);
        assert!(c.get_exact("b", |_| Some(1)).is_none(), "b was LRU");
    }

    fn int_cols(vals: &[i64]) -> BTreeMap<usize, Arc<ColumnData>> {
        let mut col = ColumnData::with_capacity(DataType::Int64, vals.len());
        for &v in vals {
            col.push(Value::Int(v)).unwrap();
        }
        BTreeMap::from([(0usize, Arc::new(col))])
    }

    fn range(lo: i64, hi: i64) -> Interval {
        Interval::new(
            Bound::Exclusive(Value::Int(lo)),
            Bound::Exclusive(Value::Int(hi)),
        )
        .unwrap()
    }

    #[test]
    fn subsumption_requires_containment_on_the_same_column() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_filtered(
            "fam".into(),
            int_cols(&[1, 2, 3, 4]),
            4,
            Some((0, range(0, 5))),
            deps_t(1),
        );
        // Contained range: hit.
        assert!(c
            .get_subsumed("fam", &Some((0, range(1, 4))), |_| Some(1))
            .is_some());
        // Wider range: no proof, miss.
        assert!(c
            .get_subsumed("fam", &Some((0, range(0, 9))), |_| Some(1))
            .is_none());
        // Different column: miss.
        assert!(c
            .get_subsumed("fam", &Some((1, range(1, 4))), |_| Some(1))
            .is_none());
        // Unconstrained query cannot be served by a constrained entry.
        assert!(c.get_subsumed("fam", &None, |_| Some(1)).is_none());
    }

    #[test]
    fn unconstrained_entry_serves_any_range_on_a_cached_column() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_filtered("fam".into(), int_cols(&[5, 6, 7]), 3, None, deps_t(1));
        assert!(c
            .get_subsumed("fam", &Some((0, range(5, 7))), |_| Some(1))
            .is_some());
        assert!(c.get_subsumed("fam", &None, |_| Some(1)).is_some());
        // Column 9 is not cached: the re-filter could not evaluate it.
        assert!(c
            .get_subsumed("fam", &Some((9, range(5, 7))), |_| Some(1))
            .is_none());
    }

    #[test]
    fn subsumed_hit_revalidates_epochs() {
        let c = ResultCache::new(1 << 20, 16);
        c.insert_filtered(
            "fam".into(),
            int_cols(&[1, 2]),
            2,
            Some((0, range(0, 3))),
            deps_t(4),
        );
        assert!(c
            .get_subsumed("fam", &Some((0, range(1, 3))), |_| Some(5))
            .is_none());
        assert!(c.is_empty(), "stale family dropped");
    }
}
