//! The catalog: linked raw files and their derived state.
//!
//! Registering a table is "the only requirement from the user: a link to the
//! raw data files". Everything else — schema, positional map, split-file
//! catalog, adaptive store contents — is derived lazily and can be dropped
//! at any time. A fingerprint (length + mtime) detects out-of-band edits to
//! the raw file; on mismatch all derived state is discarded and the schema
//! re-inferred (§5.4's simple update story: the user may "edit the data with
//! a text editor directly at any time and fire a query again").

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::SystemTime;

use parking_lot::RwLock;

use nodb_rawcsv::{infer_from_bytes, CsvOptions, PositionalMap, SegmentCatalog};
use nodb_store::TableData;
use nodb_types::{ColumnData, Error, Result, Schema, WorkCounters};

use crate::monitor::TableMonitor;

/// Process-wide schema-epoch source. Epochs must be unique across every
/// table that ever existed, not merely monotonic per entry: the plan
/// cache and prepared statements compare epochs to detect that a name was
/// re-bound (unregister + register, or a re-created result table), and a
/// per-entry counter restarting at 1 would collide with the old entry's.
fn next_epoch() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Filesystem-safe directory component for a table key. The Rust API
/// accepts arbitrary registration names, so a name containing path
/// separators or `..` must not steer derived files (or unregister-time
/// deletion) outside the store directory: alphanumerics, `_` and `-`
/// pass through, everything else becomes `_`, and a rewritten name gets
/// a hash suffix so distinct keys cannot collide.
fn dir_component(key: &str) -> String {
    let safe: String = key
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if safe == key {
        safe
    } else {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        format!("{safe}-{h:016x}")
    }
}

/// Fingerprint of a raw file for change detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// File length in bytes.
    pub len: u64,
    /// Modification time.
    pub mtime: Option<SystemTime>,
}

impl Fingerprint {
    /// Read the fingerprint of a file.
    pub fn of(path: &Path) -> Result<Fingerprint> {
        let md = std::fs::metadata(path)?;
        Ok(Fingerprint {
            len: md.len(),
            mtime: md.modified().ok(),
        })
    }
}

/// Everything the engine knows about one linked file.
#[derive(Debug)]
pub struct TableEntry {
    /// Table name (as registered).
    pub name: String,
    /// Path of the raw file.
    pub path: PathBuf,
    /// Directory for generated artefacts (split segments).
    pub store_dir: PathBuf,
    /// Inferred schema + header information (populated on first touch).
    pub schema_info: Option<SchemaInfo>,
    /// Fingerprint at the time derived state was built.
    pub fingerprint: Option<Fingerprint>,
    /// The adaptive positional map.
    pub posmap: PositionalMap,
    /// Split-file segment catalog (always present; single original segment
    /// until the SplitFiles policy cracks it).
    pub segments: Option<SegmentCatalog>,
    /// Per-segment positional maps, keyed by segment path.
    pub segment_posmaps: std::collections::HashMap<PathBuf, PositionalMap>,
    /// The adaptive store contents for this table.
    pub store: TableData,
    /// Workload monitor state (§5.5).
    pub monitor: TableMonitor,
    /// Memory-resident result table: no backing raw file; the adaptive
    /// store holds every column (results-as-data, `CREATE TABLE AS` /
    /// `register_result`).
    pub resident: bool,
    /// Bumped whenever the schema is (re-)inferred — cached plans resolved
    /// against an older epoch are stale.
    pub schema_epoch: u64,
}

/// Inferred schema plus layout facts about the raw file.
#[derive(Debug, Clone)]
pub struct SchemaInfo {
    /// The schema.
    pub schema: Schema,
    /// Whether row 0 is a header (data starts at `data_start`).
    pub has_header: bool,
    /// Byte offset of the first data row.
    pub data_start: u64,
}

impl TableEntry {
    fn new(name: String, path: PathBuf, store_dir: PathBuf) -> TableEntry {
        TableEntry {
            name,
            path,
            store_dir,
            schema_info: None,
            fingerprint: None,
            posmap: PositionalMap::new(),
            segments: None,
            segment_posmaps: std::collections::HashMap::new(),
            store: TableData::new(),
            monitor: TableMonitor::default(),
            resident: false,
            schema_epoch: 0,
        }
    }

    /// A memory-resident result table: schema known up front, every column
    /// fully loaded into the adaptive store, no raw file behind it.
    pub fn resident(name: String, schema: Schema, columns: Vec<ColumnData>) -> TableEntry {
        let n_rows = columns.first().map(|c| c.len()).unwrap_or(0) as u64;
        let mut entry = TableEntry::new(name, PathBuf::new(), PathBuf::new());
        entry.resident = true;
        entry.schema_epoch = next_epoch();
        entry.schema_info = Some(SchemaInfo {
            schema,
            has_header: false,
            data_start: 0,
        });
        entry.store.set_nrows(n_rows);
        for (c, col) in columns.into_iter().enumerate() {
            entry.store.insert_full(c, col, 0);
        }
        entry
    }

    /// Ensure schema and fingerprint are current, (re)inferring after file
    /// edits. Returns `true` when derived state was invalidated.
    pub fn ensure_current(
        &mut self,
        csv: &CsvOptions,
        sample_rows: usize,
        counters: &WorkCounters,
    ) -> Result<bool> {
        if self.resident {
            return Ok(false);
        }
        let fp = Fingerprint::of(&self.path)?;
        let changed = self.fingerprint != Some(fp);
        if changed {
            self.invalidate();
            // Infer schema from a bounded prefix of the file.
            let info = nodb_rawcsv::infer_file(&self.path, csv, sample_rows, counters)?;
            self.schema_info = Some(SchemaInfo {
                schema: info.schema,
                has_header: info.has_header,
                data_start: info.data_start,
            });
            self.fingerprint = Some(fp);
            self.schema_epoch = next_epoch();
        }
        Ok(changed)
    }

    /// Like [`TableEntry::ensure_current`] but inferring from bytes already
    /// in memory (saves a read when the caller holds the file content).
    pub fn ensure_current_with_bytes(
        &mut self,
        bytes: &[u8],
        csv: &CsvOptions,
        sample_rows: usize,
    ) -> Result<bool> {
        if self.resident {
            return Ok(false);
        }
        let fp = Fingerprint::of(&self.path)?;
        let changed = self.fingerprint != Some(fp);
        if changed {
            self.invalidate();
            let info = infer_from_bytes(bytes, csv, sample_rows)?;
            self.schema_info = Some(SchemaInfo {
                schema: info.schema,
                has_header: info.has_header,
                data_start: info.data_start,
            });
            self.fingerprint = Some(fp);
            self.schema_epoch = next_epoch();
        }
        Ok(changed)
    }

    /// Drop all derived state (file changed).
    pub fn invalidate(&mut self) {
        self.store.clear();
        self.posmap.clear();
        self.segment_posmaps.clear();
        if let Some(seg) = &mut self.segments {
            let ncols = self
                .schema_info
                .as_ref()
                .map(|s| s.schema.len())
                .unwrap_or(0);
            let _ = seg.reset(&self.path, ncols);
        }
        self.segments = None;
        self.schema_info = None;
        self.fingerprint = None;
        self.monitor = TableMonitor::default();
    }

    /// The schema (must be ensured first).
    pub fn schema(&self) -> Result<&Schema> {
        self.schema_info
            .as_ref()
            .map(|s| &s.schema)
            .ok_or_else(|| Error::schema(format!("table {:?} not yet analysed", self.name)))
    }

    /// Byte offset of the first data row (0 without a header).
    pub fn data_start(&self) -> u64 {
        self.schema_info.as_ref().map(|s| s.data_start).unwrap_or(0)
    }

    /// Delete every engine-generated file derived from this table: split
    /// segments recorded in the segment catalog, plus any stale
    /// `<stem>.g<gen>.col<c>.csv` splits from earlier registrations still
    /// sitting in this table's store directory (which is private to the
    /// table — see [`Catalog::register`]). The original raw file is never
    /// touched. Returns the number of files removed.
    pub fn drop_derived_files(&self) -> usize {
        let mut removed = 0;
        if let Some(segs) = &self.segments {
            for seg in segs.segments() {
                if !seg.is_original && std::fs::remove_file(&seg.path).is_ok() {
                    removed += 1;
                }
            }
        }
        // Stale splits from previous registrations of the same file use
        // the `<stem>.g<generation>.` prefix in the store dir.
        let stem = self
            .path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        if !stem.is_empty() {
            let prefix = format!("{stem}.g");
            if let Ok(entries) = std::fs::read_dir(&self.store_dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let name = name.to_string_lossy();
                    if name.starts_with(&prefix)
                        && name.ends_with(".csv")
                        && std::fs::remove_file(entry.path()).is_ok()
                    {
                        removed += 1;
                    }
                }
            }
        }
        // The per-table directory itself, when now empty.
        let _ = std::fs::remove_dir(&self.store_dir);
        removed
    }

    /// The segment catalog, creating the initial single-segment cover.
    pub fn segments_mut(&mut self) -> Result<&mut SegmentCatalog> {
        if self.segments.is_none() {
            let ncols = self.schema()?.len();
            self.segments = Some(SegmentCatalog::new(&self.path, ncols, &self.store_dir));
        }
        Ok(self.segments.as_mut().expect("just created"))
    }
}

/// The table catalog.
#[derive(Default)]
pub struct Catalog {
    tables: std::collections::HashMap<String, Arc<RwLock<TableEntry>>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Link a raw file under a table name. Nothing is read yet — schema
    /// inference happens on first query ("zero initialization overhead").
    pub fn register(
        &mut self,
        name: &str,
        path: impl Into<PathBuf>,
        store_dir: Option<&Path>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(Error::schema(format!("table {name:?} already registered")));
        }
        let path = path.into();
        // Each table gets its own subdirectory for derived files: split
        // segments are named after the raw file's stem, so two tables
        // registered from same-stem files (`/a/data.csv`, `/b/data.csv`)
        // sharing one store dir would otherwise overwrite each other's
        // splits — and unregister-time cleanup could not tell them apart.
        let subdir = dir_component(&key);
        let dir = match store_dir {
            Some(d) => d.join(&subdir),
            None => path
                .parent()
                .unwrap_or_else(|| Path::new("."))
                .join(".nodb")
                .join(&subdir),
        };
        self.tables.insert(
            key,
            Arc::new(RwLock::new(TableEntry::new(name.to_owned(), path, dir))),
        );
        Ok(())
    }

    /// Remove a table link (derived state is dropped with it).
    pub fn unregister(&mut self, name: &str) -> bool {
        self.remove(name).is_some()
    }

    /// Remove a table link, handing back its entry (so callers can clean
    /// up on-disk derived state outside the catalog lock).
    pub fn remove(&mut self, name: &str) -> Option<Arc<RwLock<TableEntry>>> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Register a memory-resident result table. Replaces a previous
    /// *result* table of the same name (exploration loops re-create
    /// them); refuses to shadow a file-backed table.
    pub fn register_result(
        &mut self,
        name: &str,
        schema: Schema,
        columns: Vec<ColumnData>,
    ) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if let Some(existing) = self.tables.get(&key) {
            if !existing.read().resident {
                return Err(Error::schema(format!(
                    "table {name:?} is registered to a raw file; unregister it first"
                )));
            }
        }
        self.tables.insert(
            key,
            Arc::new(RwLock::new(TableEntry::resident(
                name.to_owned(),
                schema,
                columns,
            ))),
        );
        Ok(())
    }

    /// Look up a table entry.
    pub fn get(&self, name: &str) -> Result<Arc<RwLock<TableEntry>>> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| {
                let mut known: Vec<&str> = self.tables.keys().map(|s| s.as_str()).collect();
                known.sort_unstable();
                Error::schema(format!("unknown table {name:?}; registered: {known:?}"))
            })
    }

    /// Registered table names (lowercase), sorted.
    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.tables.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(name: &str, content: &str) -> (PathBuf, Catalog) {
        let dir = std::env::temp_dir().join(format!("nodb_catalog_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(&path, content).unwrap();
        let mut cat = Catalog::new();
        cat.register("t", &path, Some(&dir.join("store"))).unwrap();
        (path, cat)
    }

    #[test]
    fn register_and_lookup() {
        let (_p, cat) = setup("lookup", "1,2\n");
        assert!(cat.get("t").is_ok());
        assert!(cat.get("T").is_ok(), "case-insensitive");
        let e = cat.get("missing").unwrap_err().to_string();
        assert!(e.contains("registered"), "{e}");
        assert_eq!(cat.table_names(), vec!["t"]);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let (p, mut cat) = setup("dup", "1\n");
        assert!(cat.register("T", &p, None).is_err());
    }

    #[test]
    fn schema_inferred_on_ensure() {
        let (_p, cat) = setup("infer", "1,2.5,x\n2,3.5,y\n");
        let entry = cat.get("t").unwrap();
        let mut e = entry.write();
        assert!(e.schema_info.is_none());
        let c = WorkCounters::new();
        let changed = e.ensure_current(&CsvOptions::default(), 16, &c).unwrap();
        assert!(changed);
        assert_eq!(e.schema().unwrap().len(), 3);
        // Second ensure: no change.
        let changed = e.ensure_current(&CsvOptions::default(), 16, &c).unwrap();
        assert!(!changed);
    }

    #[test]
    fn file_edit_invalidates() {
        let (p, cat) = setup("edit", "1,2\n3,4\n");
        let entry = cat.get("t").unwrap();
        let c = WorkCounters::new();
        {
            let mut e = entry.write();
            e.ensure_current(&CsvOptions::default(), 16, &c).unwrap();
            e.store
                .insert_full(0, nodb_types::ColumnData::from_i64(vec![1, 3]), 1);
            assert!(e.store.has_full(0));
        }
        // Rewrite the file with different content (length changes).
        std::fs::write(&p, "9,9,9\n8,8,8\n7,7,7\n").unwrap();
        {
            let mut e = entry.write();
            let changed = e.ensure_current(&CsvOptions::default(), 16, &c).unwrap();
            assert!(changed);
            assert!(!e.store.has_full(0), "derived state dropped");
            assert_eq!(e.schema().unwrap().len(), 3, "schema re-inferred");
        }
    }

    #[test]
    fn unregister_removes() {
        let (_p, mut cat) = setup("unreg", "1\n");
        assert!(cat.unregister("T"));
        assert!(!cat.unregister("t"));
        assert!(cat.get("t").is_err());
    }

    #[test]
    fn segments_created_lazily() {
        let (_p, cat) = setup("segs", "1,2,3\n");
        let entry = cat.get("t").unwrap();
        let mut e = entry.write();
        let c = WorkCounters::new();
        e.ensure_current(&CsvOptions::default(), 16, &c).unwrap();
        let segs = e.segments_mut().unwrap();
        assert_eq!(segs.segments().len(), 1);
        assert_eq!(segs.segments()[0].cols, vec![0, 1, 2]);
    }
}
