//! SQL lexer.
//!
//! Hand-rolled, single pass, with byte positions kept for error messages.
//! Keywords are case-insensitive; identifiers keep their original case but
//! compare case-insensitively during planning.

use nodb_types::{Error, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier or keyword (classified by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes removed, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `?` — a positional statement parameter.
    Question,
    /// End of input.
    Eof,
}

/// A token plus its byte offset in the source (for diagnostics).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Token,
    /// Byte offset where it starts.
    pub at: usize,
}

/// Tokenize SQL text.
pub fn lex(src: &str) -> Result<Vec<Spanned>> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if b.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                out.push(Spanned {
                    tok: Token::LParen,
                    at: i,
                });
                i += 1;
            }
            b')' => {
                out.push(Spanned {
                    tok: Token::RParen,
                    at: i,
                });
                i += 1;
            }
            b',' => {
                out.push(Spanned {
                    tok: Token::Comma,
                    at: i,
                });
                i += 1;
            }
            b'.' if !b.get(i + 1).is_some_and(u8::is_ascii_digit) => {
                out.push(Spanned {
                    tok: Token::Dot,
                    at: i,
                });
                i += 1;
            }
            b'*' => {
                out.push(Spanned {
                    tok: Token::Star,
                    at: i,
                });
                i += 1;
            }
            b'+' => {
                out.push(Spanned {
                    tok: Token::Plus,
                    at: i,
                });
                i += 1;
            }
            b'-' => {
                out.push(Spanned {
                    tok: Token::Minus,
                    at: i,
                });
                i += 1;
            }
            b'/' => {
                out.push(Spanned {
                    tok: Token::Slash,
                    at: i,
                });
                i += 1;
            }
            b'=' => {
                out.push(Spanned {
                    tok: Token::Eq,
                    at: i,
                });
                i += 1;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Spanned {
                    tok: Token::Ne,
                    at: i,
                });
                i += 2;
            }
            b'<' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Spanned {
                        tok: Token::Le,
                        at: i,
                    });
                    i += 2;
                }
                Some(b'>') => {
                    out.push(Spanned {
                        tok: Token::Ne,
                        at: i,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Spanned {
                        tok: Token::Lt,
                        at: i,
                    });
                    i += 1;
                }
            },
            b'>' => match b.get(i + 1) {
                Some(b'=') => {
                    out.push(Spanned {
                        tok: Token::Ge,
                        at: i,
                    });
                    i += 2;
                }
                _ => {
                    out.push(Spanned {
                        tok: Token::Gt,
                        at: i,
                    });
                    i += 1;
                }
            },
            b'?' => {
                out.push(Spanned {
                    tok: Token::Question,
                    at: i,
                });
                i += 1;
            }
            b'\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match b.get(i) {
                        None => {
                            return Err(Error::Sql(format!(
                                "unterminated string literal starting at byte {start}"
                            )))
                        }
                        Some(b'\'') if b.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            // Respect UTF-8 boundaries via str indexing.
                            let rest = &src[i..];
                            let ch = rest.chars().next().expect("non-empty");
                            s.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                out.push(Spanned {
                    tok: Token::Str(s),
                    at: start,
                });
            }
            b'0'..=b'9' | b'.' => {
                let start = i;
                let mut saw_dot = false;
                let mut saw_exp = false;
                while i < b.len() {
                    match b[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !saw_dot && !saw_exp => {
                            saw_dot = true;
                            i += 1;
                        }
                        b'e' | b'E' if !saw_exp && i > start => {
                            saw_exp = true;
                            i += 1;
                            if matches!(b.get(i), Some(b'+') | Some(b'-')) {
                                i += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text = &src[start..i];
                let tok = if saw_dot || saw_exp {
                    Token::Float(
                        text.parse::<f64>()
                            .map_err(|e| Error::Sql(format!("bad float literal {text:?}: {e}")))?,
                    )
                } else {
                    Token::Int(
                        text.parse::<i64>()
                            .map_err(|e| Error::Sql(format!("bad int literal {text:?}: {e}")))?,
                    )
                };
                out.push(Spanned { tok, at: start });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Token::Ident(src[start..i].to_owned()),
                    at: start,
                });
            }
            other => {
                return Err(Error::Sql(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )))
            }
        }
    }
    out.push(Spanned {
        tok: Token::Eof,
        at: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn keywords_and_symbols() {
        assert_eq!(
            toks("select sum(a1) from r"),
            vec![
                Token::Ident("select".into()),
                Token::Ident("sum".into()),
                Token::LParen,
                Token::Ident("a1".into()),
                Token::RParen,
                Token::Ident("from".into()),
                Token::Ident("r".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("< <= > >= = <> !="),
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne,
                Token::Eof
            ]
        );
    }

    #[test]
    fn numeric_literals() {
        assert_eq!(
            toks("42 -7 2.5 1e3 2.5e-2"),
            vec![
                Token::Int(42),
                Token::Minus,
                Token::Int(7),
                Token::Float(2.5),
                Token::Float(1000.0),
                Token::Float(0.025),
                Token::Eof
            ]
        );
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(
            toks("'hello' 'it''s'"),
            vec![
                Token::Str("hello".into()),
                Token::Str("it's".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn qualified_names_lex_as_ident_dot_ident() {
        assert_eq!(
            toks("r.a1"),
            vec![
                Token::Ident("r".into()),
                Token::Dot,
                Token::Ident("a1".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("select -- comment here\n 1"),
            vec![Token::Ident("select".into()), Token::Int(1), Token::Eof]
        );
    }

    #[test]
    fn question_mark_lexes_as_parameter() {
        assert_eq!(
            toks("a1 > ? and a2 < ?"),
            vec![
                Token::Ident("a1".into()),
                Token::Gt,
                Token::Question,
                Token::Ident("and".into()),
                Token::Ident("a2".into()),
                Token::Lt,
                Token::Question,
                Token::Eof
            ]
        );
    }

    #[test]
    fn unexpected_character_errors() {
        let e = lex("select ;").unwrap_err().to_string();
        assert!(e.contains("';'"), "{e}");
    }

    #[test]
    fn spans_recorded() {
        let spanned = lex("a  b").unwrap();
        assert_eq!(spanned[0].at, 0);
        assert_eq!(spanned[1].at, 3);
    }
}
