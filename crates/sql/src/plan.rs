//! Name resolution and logical planning.
//!
//! Turns an [`AstQuery`] into a [`Plan`] with every identifier resolved to a
//! column ordinal. For joins, ordinals live in the *combined* schema (left
//! table's columns first, then the right table's), and the plan knows how to
//! split predicates and referenced columns back per table — that split is
//! exactly what the adaptive loader consumes to decide what to fetch from
//! which file.

use nodb_types::{ColPred, Conjunction, Error, Result, Schema, Value};

use nodb_exec::{AggFunc, AggSpec, ArithOp, Expr};

use crate::ast::{AstAgg, AstArith, AstExpr, AstQuery, QIdent};

/// Source of table schemas during planning.
pub trait SchemaProvider {
    /// Schema for a table name (case-insensitive), if the table exists.
    fn table_schema(&self, name: &str) -> Option<Schema>;
}

impl SchemaProvider for std::collections::HashMap<String, Schema> {
    fn table_schema(&self, name: &str) -> Option<Schema> {
        self.iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.clone())
    }
}

/// A resolved join.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedJoin {
    /// Right table name as given in the query.
    pub table: String,
    /// Join key ordinal in the *left* table schema.
    pub left_key: usize,
    /// Join key ordinal in the *right* table schema.
    pub right_key: usize,
}

/// One output column of the query.
#[derive(Debug, Clone, PartialEq)]
pub enum OutputExpr {
    /// Plain scalar expression (over combined ordinals).
    Scalar(Expr),
    /// Aggregate (over combined ordinals).
    Agg(AggSpec),
}

/// A slot in a [`Plan`] that a statement parameter fills at bind time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamSite {
    /// `filter.preds[pred].value` comes from the parameter.
    FilterPred {
        /// Index into `filter.preds`.
        pred: usize,
        /// 0-based parameter ordinal.
        param: usize,
    },
    /// LIMIT comes from the parameter.
    Limit {
        /// 0-based parameter ordinal.
        param: usize,
    },
    /// OFFSET comes from the parameter.
    Offset {
        /// 0-based parameter ordinal.
        param: usize,
    },
}

/// A fully resolved logical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Left (FROM) table name.
    pub table: String,
    /// Optional join.
    pub join: Option<ResolvedJoin>,
    /// Output expressions, combined ordinals.
    pub output: Vec<OutputExpr>,
    /// Output column labels.
    pub output_names: Vec<String>,
    /// WHERE conjunction, combined ordinals.
    pub filter: Conjunction,
    /// GROUP BY combined ordinals.
    pub group_by: Vec<usize>,
    /// ORDER BY combined ordinals with ascending flags.
    pub order_by: Vec<(usize, bool)>,
    /// LIMIT.
    pub limit: Option<usize>,
    /// OFFSET (rows skipped, after ordering, before LIMIT applies).
    pub offset: Option<usize>,
    /// Number of columns in the left table (combined-ordinal split point).
    pub left_width: usize,
    /// The combined schema (left ++ right).
    pub combined_schema: Schema,
    /// Number of `?` parameters the statement declared.
    pub n_params: usize,
    /// Where each parameter lands ([`Plan::bind`] fills them).
    pub param_sites: Vec<ParamSite>,
}

impl Plan {
    /// Does the query aggregate?
    pub fn is_aggregate(&self) -> bool {
        self.output.iter().any(|o| matches!(o, OutputExpr::Agg(_)))
    }

    /// Does the plan still have unbound `?` parameters?
    pub fn is_parameterized(&self) -> bool {
        self.n_params > 0
    }

    /// Substitute parameter values into a parameterized plan, producing an
    /// executable (param-free) plan. Values are type-checked against their
    /// columns exactly like inline literals; LIMIT/OFFSET parameters must
    /// be non-negative integers. Binding re-does **no** parsing, name
    /// resolution or validation beyond the substituted slots — this is the
    /// cheap per-execution step of a prepared statement.
    pub fn bind(&self, params: &[Value]) -> Result<Plan> {
        if params.len() != self.n_params {
            return Err(Error::Plan(format!(
                "statement takes {} parameter(s), got {}",
                self.n_params,
                params.len()
            )));
        }
        let mut bound = self.clone();
        for site in &self.param_sites {
            match *site {
                ParamSite::FilterPred { pred, param } => {
                    let v = params[param].clone();
                    let col = bound.filter.preds[pred].col;
                    check_literal_type(&bound.combined_schema, col, &v)?;
                    bound.filter.preds[pred].value = v;
                }
                ParamSite::Limit { param } => {
                    bound.limit = Some(expect_count(&params[param], "LIMIT")?);
                }
                ParamSite::Offset { param } => {
                    bound.offset = Some(expect_count(&params[param], "OFFSET")?);
                }
            }
        }
        bound.n_params = 0;
        bound.param_sites.clear();
        Ok(bound)
    }

    /// All combined ordinals the query touches (select, filter, group,
    /// order, join keys), sorted and deduplicated.
    pub fn referenced_columns(&self) -> Vec<usize> {
        let mut cols = Vec::new();
        for o in &self.output {
            match o {
                OutputExpr::Scalar(e) => cols.extend(e.columns()),
                OutputExpr::Agg(a) => cols.extend(a.columns()),
            }
        }
        cols.extend(self.filter.columns());
        cols.extend(self.group_by.iter().copied());
        cols.extend(self.order_by.iter().map(|(c, _)| *c));
        if let Some(j) = &self.join {
            cols.push(j.left_key);
            cols.push(self.left_width + j.right_key);
        }
        cols.sort_unstable();
        cols.dedup();
        cols
    }

    /// Referenced columns split per table, in each table's local ordinals.
    pub fn referenced_per_table(&self) -> (Vec<usize>, Vec<usize>) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for c in self.referenced_columns() {
            if c < self.left_width {
                left.push(c);
            } else {
                right.push(c - self.left_width);
            }
        }
        (left, right)
    }

    /// The filter split per table, predicates rebased to local ordinals.
    /// (Every predicate is `col op literal`, so each belongs to exactly one
    /// table.)
    pub fn filter_per_table(&self) -> (Conjunction, Conjunction) {
        let mut left = Vec::new();
        let mut right = Vec::new();
        for p in &self.filter.preds {
            if p.col < self.left_width {
                left.push(p.clone());
            } else {
                right.push(ColPred {
                    col: p.col - self.left_width,
                    op: p.op,
                    value: p.value.clone(),
                });
            }
        }
        (Conjunction::new(left), Conjunction::new(right))
    }

    /// The EXPLAIN listing: the configured loading and kernel strategies
    /// as comment lines, then the per-step plan rendering (the `Display`
    /// impl). `EXPLAIN` and `EXPLAIN ANALYZE` both start from this one
    /// renderer — ANALYZE appends measured annotations after it — so the
    /// two listings can never drift apart.
    pub fn render(&self, loading: &str, kernel: &str) -> String {
        format!("-- strategy: {loading}\n-- kernel: {kernel}\n{self}")
    }
}

impl std::fmt::Display for Plan {
    /// EXPLAIN-style rendering: one line per plan step, innermost first.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (needed_l, needed_r) = self.referenced_per_table();
        let (filter_l, filter_r) = self.filter_per_table();
        let names = |cols: &[usize], base: usize| -> String {
            let v: Vec<String> = cols
                .iter()
                .map(|&c| {
                    self.combined_schema
                        .field(base + c)
                        .map(|fd| fd.name.clone())
                        .unwrap_or_else(|| format!("#{}", base + c))
                })
                .collect();
            v.join(", ")
        };
        writeln!(
            f,
            "AdaptiveLoad table={} columns=[{}]{}",
            self.table,
            names(&needed_l, 0),
            if filter_l.is_always_true() {
                String::new()
            } else {
                format!(" pushdown=({filter_l})")
            }
        )?;
        if let Some(j) = &self.join {
            writeln!(
                f,
                "AdaptiveLoad table={} columns=[{}]{}",
                j.table,
                names(&needed_r, self.left_width),
                if filter_r.is_always_true() {
                    String::new()
                } else {
                    format!(" pushdown=({filter_r})")
                }
            )?;
            writeln!(
                f,
                "HashJoin {}.#{} = {}.#{}",
                self.table, j.left_key, j.table, j.right_key
            )?;
        }
        if !self.filter.is_always_true() {
            writeln!(f, "Filter {}", self.filter)?;
        }
        if !self.group_by.is_empty() {
            writeln!(f, "GroupBy [{}]", names(&self.group_by, 0))?;
        }
        if self.is_aggregate() || !self.group_by.is_empty() {
            let aggs: Vec<String> = self
                .output
                .iter()
                .filter_map(|o| match o {
                    OutputExpr::Agg(a) => Some(match &a.expr {
                        Some(e) => format!("{}({e})", a.func),
                        None => "count(*)".to_owned(),
                    }),
                    OutputExpr::Scalar(_) => None,
                })
                .collect();
            writeln!(f, "Aggregate [{}]", aggs.join(", "))?;
        }
        if !self.order_by.is_empty() {
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|(c, asc)| {
                    format!(
                        "{}{}",
                        self.combined_schema
                            .field(*c)
                            .map(|fd| fd.name.clone())
                            .unwrap_or_else(|| format!("#{c}")),
                        if *asc { "" } else { " desc" }
                    )
                })
                .collect();
            writeln!(f, "OrderBy [{}]", keys.join(", "))?;
        }
        match (self.limit, self.offset) {
            (Some(n), Some(m)) => writeln!(f, "Limit {n} offset {m}")?,
            (Some(n), None) => writeln!(f, "Limit {n}")?,
            (None, Some(m)) => writeln!(f, "Offset {m}")?,
            (None, None) => {}
        }
        writeln!(f, "Project [{}]", self.output_names.join(", "))
    }
}

/// Resolve a parsed query against the available schemas.
pub fn plan(ast: &AstQuery, provider: &dyn SchemaProvider) -> Result<Plan> {
    let left_schema = provider
        .table_schema(&ast.table)
        .ok_or_else(|| Error::schema(format!("unknown table {:?}", ast.table)))?;
    let (join, combined_schema, left_width) = match &ast.join {
        None => {
            let w = left_schema.len();
            (None, left_schema.clone(), w)
        }
        Some(j) => {
            let right_schema = provider
                .table_schema(&j.table)
                .ok_or_else(|| Error::schema(format!("unknown table {:?}", j.table)))?;
            let mut fields = left_schema.fields().to_vec();
            // Qualify duplicated names so the combined schema stays valid.
            for f in right_schema.fields() {
                let name = if fields.iter().any(|g| g.name.eq_ignore_ascii_case(&f.name)) {
                    format!("{}.{}", j.table, f.name)
                } else {
                    f.name.clone()
                };
                fields.push(nodb_types::Field::new(name, f.data_type));
            }
            let combined = Schema::new(fields)?;
            let ctx = NameCtx {
                left_table: &ast.table,
                right_table: Some(&j.table),
                left: &left_schema,
                right: Some(&right_schema),
            };
            // Resolve the ON columns: one side must land in each table.
            let a = ctx.resolve(&j.left)?;
            let b = ctx.resolve(&j.right)?;
            let lw = left_schema.len();
            let (lk, rk) = match (a < lw, b < lw) {
                (true, false) => (a, b - lw),
                (false, true) => (b, a - lw),
                _ => {
                    return Err(Error::Plan(
                        "join condition must equate one column from each table".into(),
                    ))
                }
            };
            (
                Some(ResolvedJoin {
                    table: j.table.clone(),
                    left_key: lk,
                    right_key: rk,
                }),
                combined,
                lw,
            )
        }
    };

    let ctx = NameCtx {
        left_table: &ast.table,
        right_table: ast.join.as_ref().map(|j| j.table.as_str()),
        left: &left_schema,
        right: None, // resolution below uses combined widths via resolve_combined
    };
    // For unified resolution against the combined schema we rebuild a ctx
    // that knows both sides.
    let right_schema_owned;
    let ctx = if let Some(j) = &ast.join {
        right_schema_owned = provider.table_schema(&j.table).expect("checked above");
        NameCtx {
            left_table: &ast.table,
            right_table: Some(&j.table),
            left: &left_schema,
            right: Some(&right_schema_owned),
        }
    } else {
        ctx
    };

    // SELECT list.
    let mut output = Vec::new();
    let mut output_names = Vec::new();
    if ast.star {
        for (i, f) in combined_schema.fields().iter().enumerate() {
            output.push(OutputExpr::Scalar(Expr::Col(i)));
            output_names.push(f.name.clone());
        }
    } else {
        for item in &ast.items {
            let (oe, default_name) = resolve_item(&item.expr, &ctx)?;
            output_names.push(item.alias.clone().unwrap_or(default_name));
            output.push(oe);
        }
    }

    // WHERE. Parameterized predicates keep a NULL placeholder; their
    // values are type-checked when [`Plan::bind`] substitutes them.
    let mut preds = Vec::new();
    let mut param_sites = Vec::new();
    for p in &ast.predicates {
        let col = ctx.resolve(&p.col)?;
        match p.param {
            Some(param) => param_sites.push(ParamSite::FilterPred {
                pred: preds.len(),
                param,
            }),
            None => check_literal_type(&combined_schema, col, &p.lit)?,
        }
        preds.push(ColPred {
            col,
            op: p.op,
            value: p.lit.clone(),
        });
    }
    let filter = Conjunction::new(preds);
    if let Some(param) = ast.limit_param {
        param_sites.push(ParamSite::Limit { param });
    }
    if let Some(param) = ast.offset_param {
        param_sites.push(ParamSite::Offset { param });
    }

    // GROUP BY.
    let mut group_by = Vec::new();
    for g in &ast.group_by {
        group_by.push(ctx.resolve(g)?);
    }

    // Aggregate validation: scalar outputs must be plain grouped columns.
    let has_agg = output.iter().any(|o| matches!(o, OutputExpr::Agg(_)));
    if has_agg || !group_by.is_empty() {
        for (o, name) in output.iter().zip(&output_names) {
            match o {
                OutputExpr::Agg(_) => {}
                OutputExpr::Scalar(Expr::Col(c)) if group_by.contains(c) => {}
                OutputExpr::Scalar(_) => {
                    return Err(Error::Plan(format!(
                        "output {name:?} must be an aggregate or a GROUP BY column"
                    )))
                }
            }
        }
    }

    // ORDER BY.
    let mut order_by = Vec::new();
    for (q, asc) in &ast.order_by {
        let c = ctx.resolve(q)?;
        if (has_agg || !group_by.is_empty()) && !group_by.contains(&c) {
            return Err(Error::Plan(format!(
                "ORDER BY column {:?} must appear in GROUP BY for aggregate queries",
                q.name
            )));
        }
        order_by.push((c, *asc));
    }

    Ok(Plan {
        table: ast.table.clone(),
        join,
        output,
        output_names,
        filter,
        group_by,
        order_by,
        limit: ast.limit,
        offset: ast.offset,
        left_width,
        combined_schema,
        n_params: ast.n_params,
        param_sites,
    })
}

/// A LIMIT/OFFSET parameter must bind to a non-negative integer.
fn expect_count(v: &Value, what: &str) -> Result<usize> {
    match v {
        Value::Int(n) if *n >= 0 => Ok(*n as usize),
        other => Err(Error::Plan(format!(
            "{what} parameter must be a non-negative integer, got {other}"
        ))),
    }
}

/// Parse and plan in one call.
pub fn plan_sql(sql: &str, provider: &dyn SchemaProvider) -> Result<Plan> {
    let ast = crate::ast::parse(sql)?;
    plan(&ast, provider)
}

struct NameCtx<'a> {
    left_table: &'a str,
    right_table: Option<&'a str>,
    left: &'a Schema,
    right: Option<&'a Schema>,
}

impl NameCtx<'_> {
    /// Resolve a possibly-qualified identifier to a combined ordinal.
    fn resolve(&self, q: &QIdent) -> Result<usize> {
        let lw = self.left.len();
        match &q.table {
            Some(t) if t.eq_ignore_ascii_case(self.left_table) => self
                .find(self.left, &q.name)
                .ok_or_else(|| Error::schema(format!("table {t:?} has no column {:?}", q.name))),
            Some(t)
                if self
                    .right_table
                    .is_some_and(|rt| t.eq_ignore_ascii_case(rt)) =>
            {
                let rs = self.right.expect("right schema present for join");
                self.find(rs, &q.name)
                    .map(|i| lw + i)
                    .ok_or_else(|| Error::schema(format!("table {t:?} has no column {:?}", q.name)))
            }
            Some(t) => Err(Error::schema(format!("unknown table qualifier {t:?}"))),
            None => {
                let in_left = self.find(self.left, &q.name);
                let in_right = self.right.and_then(|rs| self.find(rs, &q.name));
                match (in_left, in_right) {
                    (Some(i), None) => Ok(i),
                    (None, Some(i)) => Ok(lw + i),
                    (Some(_), Some(_)) => Err(Error::schema(format!(
                        "column {:?} is ambiguous; qualify it with a table name",
                        q.name
                    ))),
                    (None, None) => Err(Error::schema(format!("unknown column {:?}", q.name))),
                }
            }
        }
    }

    fn find(&self, schema: &Schema, name: &str) -> Option<usize> {
        schema
            .fields()
            .iter()
            .position(|f| f.name.eq_ignore_ascii_case(name))
    }
}

fn resolve_item(e: &AstExpr, ctx: &NameCtx<'_>) -> Result<(OutputExpr, String)> {
    match e {
        AstExpr::Agg(func, arg) => {
            let func = match func {
                AstAgg::Sum => AggFunc::Sum,
                AstAgg::Min => AggFunc::Min,
                AstAgg::Max => AggFunc::Max,
                AstAgg::Avg => AggFunc::Avg,
                AstAgg::Count => {
                    if arg.is_none() {
                        return Ok((
                            OutputExpr::Agg(AggSpec::count_star()),
                            "count(*)".to_owned(),
                        ));
                    }
                    AggFunc::Count
                }
            };
            let arg = arg.as_ref().expect("non-count(*) aggregates have args");
            let inner = resolve_scalar(arg, ctx)?;
            let name = format!("{}({})", func, describe(arg));
            Ok((
                OutputExpr::Agg(AggSpec {
                    func,
                    expr: Some(inner),
                }),
                name,
            ))
        }
        _ => {
            let inner = resolve_scalar(e, ctx)?;
            Ok((OutputExpr::Scalar(inner), describe(e)))
        }
    }
}

fn resolve_scalar(e: &AstExpr, ctx: &NameCtx<'_>) -> Result<Expr> {
    match e {
        AstExpr::Col(q) => Ok(Expr::Col(ctx.resolve(q)?)),
        AstExpr::Lit(v) => Ok(Expr::Lit(v.clone())),
        AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
            op: match op {
                AstArith::Add => ArithOp::Add,
                AstArith::Sub => ArithOp::Sub,
                AstArith::Mul => ArithOp::Mul,
                AstArith::Div => ArithOp::Div,
            },
            left: Box::new(resolve_scalar(left, ctx)?),
            right: Box::new(resolve_scalar(right, ctx)?),
        }),
        AstExpr::Agg(..) => Err(Error::Unsupported(
            "aggregates may only appear at the top level of a SELECT item".into(),
        )),
        AstExpr::Param(_) => Err(Error::Unsupported(
            "? parameters are only supported as WHERE literals and in LIMIT/OFFSET".into(),
        )),
    }
}

fn describe(e: &AstExpr) -> String {
    match e {
        AstExpr::Col(q) => match &q.table {
            Some(t) => format!("{t}.{}", q.name),
            None => q.name.clone(),
        },
        AstExpr::Lit(v) => v.to_string(),
        AstExpr::Binary { op, left, right } => {
            let sym = match op {
                AstArith::Add => "+",
                AstArith::Sub => "-",
                AstArith::Mul => "*",
                AstArith::Div => "/",
            };
            format!("{}{}{}", describe(left), sym, describe(right))
        }
        AstExpr::Param(i) => format!("?{}", i + 1),
        AstExpr::Agg(f, arg) => {
            let fname = match f {
                AstAgg::Sum => "sum",
                AstAgg::Min => "min",
                AstAgg::Max => "max",
                AstAgg::Avg => "avg",
                AstAgg::Count => "count",
            };
            match arg {
                None => format!("{fname}(*)"),
                Some(a) => format!("{fname}({})", describe(a)),
            }
        }
    }
}

/// Predicate literals must be type-compatible with their column (numeric
/// literal on numeric column, string on string).
fn check_literal_type(schema: &Schema, col: usize, lit: &Value) -> Result<()> {
    let field = schema
        .field(col)
        .ok_or_else(|| Error::schema(format!("ordinal {col} out of range")))?;
    let ok = match lit {
        Value::Null => true,
        Value::Int(_) | Value::Float(_) => field.data_type.is_numeric(),
        Value::Str(_) => field.data_type == nodb_types::DataType::Str,
    };
    if ok {
        Ok(())
    } else {
        Err(Error::Plan(format!(
            "predicate literal {lit} is incompatible with column {:?} of type {}",
            field.name, field.data_type
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use std::collections::HashMap;

    fn provider() -> HashMap<String, Schema> {
        let mut m = HashMap::new();
        m.insert("r".to_owned(), Schema::ints(4));
        m.insert("s".to_owned(), Schema::ints(3));
        m.insert(
            "people".to_owned(),
            Schema::new(vec![
                nodb_types::Field::new("id", nodb_types::DataType::Int64),
                nodb_types::Field::new("name", nodb_types::DataType::Str),
                nodb_types::Field::new("score", nodb_types::DataType::Float64),
            ])
            .unwrap(),
        );
        m
    }

    fn plan_of(sql: &str) -> Plan {
        plan(&parse(sql).unwrap(), &provider()).unwrap()
    }

    #[test]
    fn paper_q1_plan() {
        let p = plan_of(
            "select sum(a1),min(a4),max(a3),avg(a2) from r \
             where a1>5 and a1<10 and a2>3 and a2<8",
        );
        assert!(p.is_aggregate());
        assert_eq!(p.referenced_columns(), vec![0, 1, 2, 3]);
        assert_eq!(p.output_names[0], "sum(a1)");
        assert_eq!(p.filter.preds.len(), 4);
        assert!(p.join.is_none());
    }

    #[test]
    fn q2_references_only_two_columns() {
        let p = plan_of("select sum(a1),avg(a2) from r where a1>1 and a2<5");
        assert_eq!(p.referenced_columns(), vec![0, 1]);
    }

    #[test]
    fn star_expands_combined_schema() {
        let p = plan_of("select * from r");
        assert_eq!(p.output.len(), 4);
        assert_eq!(p.output_names, vec!["a1", "a2", "a3", "a4"]);
        assert!(!p.is_aggregate());
    }

    #[test]
    fn case_insensitive_tables_and_columns() {
        let p = plan_of("select A1 from R where A2 > 1");
        assert_eq!(p.referenced_columns(), vec![0, 1]);
    }

    #[test]
    fn join_resolution_and_splits() {
        let p = plan_of(
            "select sum(r.a2), sum(s.a2) from r join s on r.a1 = s.a1 \
             where r.a3 > 5 and s.a2 < 9",
        );
        let j = p.join.as_ref().unwrap();
        assert_eq!((j.left_key, j.right_key), (0, 0));
        assert_eq!(p.left_width, 4);
        let (lc, rc) = p.referenced_per_table();
        assert_eq!(lc, vec![0, 1, 2]);
        assert_eq!(rc, vec![0, 1]);
        let (lf, rf) = p.filter_per_table();
        assert_eq!(lf.preds.len(), 1);
        assert_eq!(lf.preds[0].col, 2);
        assert_eq!(rf.preds.len(), 1);
        assert_eq!(rf.preds[0].col, 1); // rebased to local ordinal
    }

    #[test]
    fn join_on_flipped_sides() {
        let p = plan_of("select r.a1 from r join s on s.a2 = r.a3");
        let j = p.join.unwrap();
        assert_eq!((j.left_key, j.right_key), (2, 1));
    }

    #[test]
    fn ambiguous_column_in_join_rejected() {
        let e = plan(
            &parse("select a1 from r join s on r.a1 = s.a1").unwrap(),
            &provider(),
        )
        .unwrap_err()
        .to_string();
        assert!(e.contains("ambiguous"), "{e}");
    }

    #[test]
    fn join_duplicate_names_qualified_in_combined_schema() {
        let p = plan_of("select r.a1 from r join s on r.a1 = s.a1");
        assert_eq!(p.combined_schema.field(4).unwrap().name, "s.a1");
    }

    #[test]
    fn group_by_validation() {
        let p = plan_of("select a1, count(*) from r group by a1 order by a1");
        assert_eq!(p.group_by, vec![0]);
        assert_eq!(p.order_by, vec![(0, true)]);
        // Non-grouped scalar output rejected.
        assert!(plan(
            &parse("select a2, count(*) from r group by a1").unwrap(),
            &provider()
        )
        .is_err());
        // Order by non-grouped column rejected.
        assert!(plan(
            &parse("select a1, count(*) from r group by a1 order by a2").unwrap(),
            &provider()
        )
        .is_err());
    }

    #[test]
    fn unknown_table_and_column_errors() {
        assert!(plan(&parse("select a1 from nope").unwrap(), &provider()).is_err());
        assert!(plan(&parse("select zz from r").unwrap(), &provider()).is_err());
        assert!(plan(&parse("select x.a1 from r").unwrap(), &provider()).is_err());
    }

    #[test]
    fn literal_type_checking() {
        assert!(plan(
            &parse("select a1 from r where a1 > 'text'").unwrap(),
            &provider()
        )
        .is_err());
        assert!(plan(
            &parse("select id from people where name > 5").unwrap(),
            &provider()
        )
        .is_err());
        // Float literal on int column is fine.
        plan(
            &parse("select a1 from r where a1 > 2.5").unwrap(),
            &provider(),
        )
        .unwrap();
        // String literal on string column is fine.
        plan(
            &parse("select id from people where name = 'bob'").unwrap(),
            &provider(),
        )
        .unwrap();
    }

    #[test]
    fn nested_aggregate_rejected() {
        assert!(plan(&parse("select sum(a1) + 1 from r").unwrap(), &provider()).is_err());
    }

    #[test]
    fn order_by_unselected_column_ok_for_scalar_queries() {
        let p = plan_of("select a1 from r order by a3 desc limit 2");
        assert_eq!(p.order_by, vec![(2, false)]);
        assert_eq!(p.limit, Some(2));
        assert!(p.referenced_columns().contains(&2));
    }

    #[test]
    fn plan_sql_convenience() {
        let p = plan_sql("select count(*) from r", &provider()).unwrap();
        assert!(p.is_aggregate());
        assert_eq!(p.referenced_columns(), Vec::<usize>::new());
    }

    #[test]
    fn offset_reaches_plan() {
        let p = plan_of("select a1 from r order by a1 limit 3 offset 2");
        assert_eq!(p.limit, Some(3));
        assert_eq!(p.offset, Some(2));
        assert!(format!("{p}").contains("Limit 3 offset 2"));
    }

    #[test]
    fn bind_substitutes_and_type_checks() {
        let p = plan_of("select a1 from r where a1 > ? and a2 < ? limit ?");
        assert!(p.is_parameterized());
        assert_eq!(p.n_params, 3);
        let b = p
            .bind(&[Value::Int(1), Value::Int(9), Value::Int(5)])
            .unwrap();
        assert!(!b.is_parameterized());
        assert_eq!(b.filter.preds[0].value, Value::Int(1));
        assert_eq!(b.filter.preds[1].value, Value::Int(9));
        assert_eq!(b.limit, Some(5));
        // Re-binding the original with different values is independent.
        let b2 = p
            .bind(&[Value::Int(2), Value::Int(8), Value::Int(1)])
            .unwrap();
        assert_eq!(b2.filter.preds[0].value, Value::Int(2));
        assert_eq!(p.filter.preds[0].value, Value::Null, "original untouched");
    }

    #[test]
    fn bind_arity_and_type_errors() {
        let p = plan_of("select a1 from r where a1 > ?");
        assert!(p.bind(&[]).is_err(), "too few");
        assert!(p.bind(&[Value::Int(1), Value::Int(2)]).is_err(), "too many");
        assert!(
            p.bind(&[Value::Str("x".into())]).is_err(),
            "string into int column"
        );
        let p = plan_of("select a1 from r limit ?");
        assert!(p.bind(&[Value::Int(-1)]).is_err(), "negative limit");
        assert!(p.bind(&[Value::Str("x".into())]).is_err(), "non-int limit");
    }

    #[test]
    fn params_rejected_outside_where_and_limit() {
        assert!(matches!(
            plan(&parse("select a1 + ? from r").unwrap(), &provider()),
            Err(Error::Unsupported(_))
        ));
    }
}
