//! SQL parser producing a name-based AST.
//!
//! Supported grammar (everything the paper's experiments need, plus joins,
//! grouping, ordering and limits):
//!
//! ```text
//! stmt    := query | CREATE TABLE ident AS query
//! query   := SELECT items FROM table [JOIN table ON qident = qident]
//!            [WHERE pred (AND pred)*]
//!            [GROUP BY qident (',' qident)*]
//!            [ORDER BY qident [ASC|DESC] (',' ...)*]
//!            [LIMIT (int|'?') [OFFSET (int|'?')]]
//! items   := '*' | item (',' item)*
//! item    := expr [AS ident]
//! expr    := term (('+'|'-') term)*
//! term    := factor (('*'|'/') factor)*
//! factor  := agg '(' expr ')' | COUNT '(' '*' ')' | qident | literal
//!            | '(' expr ')' | '-' factor | '?'
//! pred    := expr cmp expr          -- one side must reduce to a column,
//!                                    -- the other to a literal or '?'
//! ```
//!
//! `?` placeholders are positional statement parameters, numbered left to
//! right; they are accepted wherever a WHERE literal may appear and after
//! `LIMIT` / `OFFSET`, and are bound per execution through the prepared-
//! statement API. `OR`, subqueries and non-equi join conditions are
//! rejected with `Unsupported` errors naming the construct.

use nodb_types::{CmpOp, Error, Result, Value};

use crate::lexer::{lex, Spanned, Token};

/// A possibly table-qualified identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QIdent {
    /// Optional table qualifier (`r` in `r.a1`).
    pub table: Option<String>,
    /// Column (or other) name.
    pub name: String,
}

impl QIdent {
    /// Unqualified name.
    pub fn bare(name: impl Into<String>) -> QIdent {
        QIdent {
            table: None,
            name: name.into(),
        }
    }
}

/// Aggregate function names the parser recognises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstAgg {
    /// `sum`
    Sum,
    /// `min`
    Min,
    /// `max`
    Max,
    /// `avg`
    Avg,
    /// `count`
    Count,
}

/// Arithmetic operators in the AST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstArith {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// An unresolved expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    /// Column reference.
    Col(QIdent),
    /// Literal value.
    Lit(Value),
    /// Binary arithmetic.
    Binary {
        /// Operator.
        op: AstArith,
        /// Left operand.
        left: Box<AstExpr>,
        /// Right operand.
        right: Box<AstExpr>,
    },
    /// Aggregate call; `None` argument means `COUNT(*)`.
    Agg(AstAgg, Option<Box<AstExpr>>),
    /// Positional statement parameter (`?`), 0-based.
    Param(usize),
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct AstSelectItem {
    /// The expression.
    pub expr: AstExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// One WHERE conjunct: `column op literal` (either side order in the text).
#[derive(Debug, Clone, PartialEq)]
pub struct AstPred {
    /// The column side.
    pub col: QIdent,
    /// Comparison with the column on the left.
    pub op: CmpOp,
    /// The literal side (`Value::Null` placeholder when `param` is set).
    pub lit: Value,
    /// When the literal side was a `?`, its 0-based parameter ordinal.
    pub param: Option<usize>,
}

/// An INNER JOIN clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AstJoin {
    /// Right table name.
    pub table: String,
    /// Left side of the ON equality.
    pub left: QIdent,
    /// Right side of the ON equality.
    pub right: QIdent,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct AstQuery {
    /// SELECT list; empty means `*`.
    pub items: Vec<AstSelectItem>,
    /// `true` when the list was `*`.
    pub star: bool,
    /// FROM table.
    pub table: String,
    /// Optional join.
    pub join: Option<AstJoin>,
    /// WHERE conjuncts.
    pub predicates: Vec<AstPred>,
    /// GROUP BY columns.
    pub group_by: Vec<QIdent>,
    /// ORDER BY columns with ascending flags.
    pub order_by: Vec<(QIdent, bool)>,
    /// LIMIT row count.
    pub limit: Option<usize>,
    /// When LIMIT was a `?`, its parameter ordinal.
    pub limit_param: Option<usize>,
    /// OFFSET row count (rows skipped before LIMIT applies).
    pub offset: Option<usize>,
    /// When OFFSET was a `?`, its parameter ordinal.
    pub offset_param: Option<usize>,
    /// Total number of `?` parameters in the statement.
    pub n_params: usize,
}

/// One parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A plain SELECT.
    Select(AstQuery),
    /// `CREATE TABLE <name> AS <select>` — materialise a query result as a
    /// catalog table (the paper-title loop: results become data).
    CreateTableAs {
        /// Name of the table to create.
        name: String,
        /// The defining query.
        query: AstQuery,
    },
}

/// Parse one SELECT statement.
pub fn parse(src: &str) -> Result<AstQuery> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parse one statement: a SELECT or `CREATE TABLE .. AS SELECT ..`.
pub fn parse_statement(src: &str) -> Result<Statement> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: 0,
    };
    let stmt = if p.is_kw("create") {
        p.bump();
        p.expect_kw("table")?;
        let name = p.ident()?;
        p.expect_kw("as")?;
        let query = p.query()?;
        if query.n_params > 0 {
            return Err(Error::Unsupported(
                "parameters are not supported in CREATE TABLE AS".into(),
            ));
        }
        Statement::CreateTableAs { name, query }
    } else {
        Statement::Select(p.query()?)
    };
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    /// Count of `?` parameters seen so far (assigns positional ordinals).
    params: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.toks[self.pos].tok
    }

    fn at(&self) -> usize {
        self.toks[self.pos].at
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {} at byte {}, found {:?}",
                kw.to_uppercase(),
                self.at(),
                self.peek()
            )))
        }
    }

    fn expect(&mut self, tok: Token) -> Result<()> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(Error::Sql(format!(
                "expected {:?} at byte {}, found {:?}",
                tok,
                self.at(),
                self.peek()
            )))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        match self.peek() {
            Token::Eof => Ok(()),
            t => Err(Error::Sql(format!(
                "unexpected trailing input at byte {}: {:?}",
                self.at(),
                t
            ))),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.bump() {
            Token::Ident(s) => Ok(s),
            t => Err(Error::Sql(format!("expected identifier, found {t:?}"))),
        }
    }

    fn qident_from(&mut self, first: String) -> Result<QIdent> {
        if *self.peek() == Token::Dot {
            self.bump();
            let name = self.ident()?;
            Ok(QIdent {
                table: Some(first),
                name,
            })
        } else {
            Ok(QIdent::bare(first))
        }
    }

    fn qident(&mut self) -> Result<QIdent> {
        let first = self.ident()?;
        self.qident_from(first)
    }

    fn query(&mut self) -> Result<AstQuery> {
        self.expect_kw("select")?;
        let (items, star) = self.select_list()?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let join = if self.eat_kw("join")
            || (self.is_kw("inner") && {
                self.bump();
                self.expect_kw("join")?;
                true
            }) {
            let jt = self.ident()?;
            self.expect_kw("on")?;
            let left = self.qident()?;
            self.expect(Token::Eq)?;
            let right = self.qident()?;
            Some(AstJoin {
                table: jt,
                left,
                right,
            })
        } else {
            None
        };
        let mut predicates = Vec::new();
        if self.eat_kw("where") {
            loop {
                predicates.push(self.predicate()?);
                if self.is_kw("or") {
                    return Err(Error::Unsupported(
                        "OR in WHERE clauses is not supported; conjunctions only".into(),
                    ));
                }
                if !self.eat_kw("and") {
                    break;
                }
            }
        }
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.qident()?);
                if !matches!(self.peek(), Token::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let col = self.qident()?;
                let asc = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push((col, asc));
                if !matches!(self.peek(), Token::Comma) {
                    break;
                }
                self.bump();
            }
        }
        let (mut limit, mut limit_param) = (None, None);
        let (mut offset, mut offset_param) = (None, None);
        if self.eat_kw("limit") {
            match self.bump() {
                Token::Int(n) if n >= 0 => limit = Some(n as usize),
                Token::Question => limit_param = Some(self.next_param()),
                t => {
                    return Err(Error::Sql(format!(
                        "LIMIT expects a non-negative integer or ?, found {t:?}"
                    )))
                }
            }
            if self.eat_kw("offset") {
                match self.bump() {
                    Token::Int(n) if n >= 0 => offset = Some(n as usize),
                    Token::Question => offset_param = Some(self.next_param()),
                    t => {
                        return Err(Error::Sql(format!(
                            "OFFSET expects a non-negative integer or ?, found {t:?}"
                        )))
                    }
                }
            }
        }
        Ok(AstQuery {
            items,
            star,
            table,
            join,
            predicates,
            group_by,
            order_by,
            limit,
            limit_param,
            offset,
            offset_param,
            n_params: self.params,
        })
    }

    fn next_param(&mut self) -> usize {
        self.params += 1;
        self.params - 1
    }

    fn select_list(&mut self) -> Result<(Vec<AstSelectItem>, bool)> {
        if matches!(self.peek(), Token::Star) {
            self.bump();
            return Ok((Vec::new(), true));
        }
        let mut items = Vec::new();
        loop {
            let expr = self.expr()?;
            let alias = if self.eat_kw("as") {
                Some(self.ident()?)
            } else {
                None
            };
            items.push(AstSelectItem { expr, alias });
            if !matches!(self.peek(), Token::Comma) {
                break;
            }
            self.bump();
        }
        Ok((items, false))
    }

    fn predicate(&mut self) -> Result<AstPred> {
        let left = self.expr()?;
        let op = match self.bump() {
            Token::Eq => CmpOp::Eq,
            Token::Ne => CmpOp::Ne,
            Token::Lt => CmpOp::Lt,
            Token::Le => CmpOp::Le,
            Token::Gt => CmpOp::Gt,
            Token::Ge => CmpOp::Ge,
            t => {
                return Err(Error::Sql(format!(
                    "expected comparison operator, found {t:?}"
                )))
            }
        };
        let right = self.expr()?;
        // Normalise to column-op-literal (a `?` counts as a literal whose
        // value arrives at bind time).
        fn flip(op: CmpOp) -> CmpOp {
            match op {
                CmpOp::Lt => CmpOp::Gt,
                CmpOp::Le => CmpOp::Ge,
                CmpOp::Gt => CmpOp::Lt,
                CmpOp::Ge => CmpOp::Le,
                other => other,
            }
        }
        match (left, right) {
            (AstExpr::Col(c), AstExpr::Lit(v)) => Ok(AstPred {
                col: c,
                op,
                lit: v,
                param: None,
            }),
            (AstExpr::Lit(v), AstExpr::Col(c)) => Ok(AstPred {
                col: c,
                op: flip(op),
                lit: v,
                param: None,
            }),
            (AstExpr::Col(c), AstExpr::Param(i)) => Ok(AstPred {
                col: c,
                op,
                lit: Value::Null,
                param: Some(i),
            }),
            (AstExpr::Param(i), AstExpr::Col(c)) => Ok(AstPred {
                col: c,
                op: flip(op),
                lit: Value::Null,
                param: Some(i),
            }),
            _ => Err(Error::Unsupported(
                "WHERE predicates must compare a column with a literal".into(),
            )),
        }
    }

    fn expr(&mut self) -> Result<AstExpr> {
        let mut left = self.term()?;
        loop {
            let op = match self.peek() {
                Token::Plus => AstArith::Add,
                Token::Minus => AstArith::Sub,
                _ => break,
            };
            self.bump();
            let right = self.term()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<AstExpr> {
        let mut left = self.factor()?;
        loop {
            let op = match self.peek() {
                Token::Star => AstArith::Mul,
                Token::Slash => AstArith::Div,
                _ => break,
            };
            self.bump();
            let right = self.factor()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<AstExpr> {
        match self.bump() {
            Token::Question => Ok(AstExpr::Param(self.next_param())),
            Token::Int(n) => Ok(AstExpr::Lit(Value::Int(n))),
            Token::Float(f) => Ok(AstExpr::Lit(Value::Float(f))),
            Token::Str(s) => Ok(AstExpr::Lit(Value::Str(s))),
            Token::Minus => {
                let inner = self.factor()?;
                match inner {
                    AstExpr::Lit(Value::Int(n)) => Ok(AstExpr::Lit(Value::Int(-n))),
                    AstExpr::Lit(Value::Float(f)) => Ok(AstExpr::Lit(Value::Float(-f))),
                    e => Ok(AstExpr::Binary {
                        op: AstArith::Sub,
                        left: Box::new(AstExpr::Lit(Value::Int(0))),
                        right: Box::new(e),
                    }),
                }
            }
            Token::LParen => {
                let e = self.expr()?;
                self.expect(Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                let agg = match name.to_ascii_lowercase().as_str() {
                    "sum" => Some(AstAgg::Sum),
                    "min" => Some(AstAgg::Min),
                    "max" => Some(AstAgg::Max),
                    "avg" => Some(AstAgg::Avg),
                    "count" => Some(AstAgg::Count),
                    _ => None,
                };
                if let (Some(a), Token::LParen) = (agg, self.peek().clone()) {
                    self.bump();
                    if a == AstAgg::Count && matches!(self.peek(), Token::Star) {
                        self.bump();
                        self.expect(Token::RParen)?;
                        return Ok(AstExpr::Agg(AstAgg::Count, None));
                    }
                    let arg = self.expr()?;
                    self.expect(Token::RParen)?;
                    return Ok(AstExpr::Agg(a, Some(Box::new(arg))));
                }
                Ok(AstExpr::Col(self.qident_from(name)?))
            }
            t => Err(Error::Sql(format!("unexpected token in expression: {t:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_q1_parses() {
        let q = parse(
            "select sum(a1),min(a4),max(a3),avg(a2) from R \
             where a1>5 and a1<10 and a2>3 and a2<8",
        )
        .unwrap();
        assert_eq!(q.table, "R");
        assert_eq!(q.items.len(), 4);
        assert_eq!(q.predicates.len(), 4);
        assert!(matches!(
            &q.items[0].expr,
            AstExpr::Agg(AstAgg::Sum, Some(_))
        ));
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert_eq!(q.predicates[0].lit, Value::Int(5));
    }

    #[test]
    fn star_and_limit() {
        let q = parse("select * from t limit 10").unwrap();
        assert!(q.star);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn join_on_clause() {
        let q = parse("select r.a1, s.a2 from r join s on r.a1 = s.a1").unwrap();
        let j = q.join.unwrap();
        assert_eq!(j.table, "s");
        assert_eq!(j.left.table.as_deref(), Some("r"));
        assert_eq!(j.right.name, "a1");
        assert_eq!(q.items.len(), 2);
    }

    #[test]
    fn inner_join_keyword() {
        let q = parse("select a1 from r inner join s on r.k = s.k").unwrap();
        assert!(q.join.is_some());
    }

    #[test]
    fn group_order_alias() {
        let q = parse(
            "select a1 as key, count(*) as n from t \
             group by a1 order by a1 desc, a2 limit 5",
        )
        .unwrap();
        assert_eq!(q.items[0].alias.as_deref(), Some("key"));
        assert_eq!(q.group_by, vec![QIdent::bare("a1")]);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].1); // desc
        assert!(q.order_by[1].1); // implicit asc
    }

    #[test]
    fn reversed_predicate_normalised() {
        let q = parse("select a1 from t where 5 < a1").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert_eq!(q.predicates[0].col, QIdent::bare("a1"));
    }

    #[test]
    fn negative_literals() {
        let q = parse("select a1 from t where a1 > -42").unwrap();
        assert_eq!(q.predicates[0].lit, Value::Int(-42));
    }

    #[test]
    fn string_predicate() {
        let q = parse("select a1 from t where name = 'bob'").unwrap();
        assert_eq!(q.predicates[0].lit, Value::Str("bob".into()));
    }

    #[test]
    fn arithmetic_precedence() {
        let q = parse("select a1 + a2 * 2 from t").unwrap();
        match &q.items[0].expr {
            AstExpr::Binary {
                op: AstArith::Add,
                right,
                ..
            } => {
                assert!(matches!(
                    **right,
                    AstExpr::Binary {
                        op: AstArith::Mul,
                        ..
                    }
                ));
            }
            other => panic!("wrong tree: {other:?}"),
        }
    }

    #[test]
    fn parens_override_precedence() {
        let q = parse("select (a1 + a2) * 2 from t").unwrap();
        assert!(matches!(
            &q.items[0].expr,
            AstExpr::Binary {
                op: AstArith::Mul,
                ..
            }
        ));
    }

    #[test]
    fn count_star_parses() {
        let q = parse("select count(*) from t").unwrap();
        assert_eq!(q.items[0].expr, AstExpr::Agg(AstAgg::Count, None));
    }

    #[test]
    fn or_rejected_with_clear_message() {
        let e = parse("select a1 from t where a1 > 1 or a1 < 0").unwrap_err();
        assert!(matches!(e, Error::Unsupported(_)));
    }

    #[test]
    fn column_vs_column_predicate_rejected() {
        assert!(parse("select a1 from t where a1 > a2").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("select a1 from t banana").is_err());
    }

    #[test]
    fn missing_from_rejected() {
        let e = parse("select a1").unwrap_err().to_string();
        assert!(e.contains("FROM"), "{e}");
    }

    #[test]
    fn negative_limit_rejected() {
        assert!(parse("select a1 from t limit -1").is_err());
    }

    #[test]
    fn limit_offset_parses() {
        let q = parse("select a1 from t order by a1 limit 10 offset 20").unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, Some(20));
        assert!(parse("select a1 from t limit 5 offset -2").is_err());
        // OFFSET without LIMIT is trailing garbage.
        assert!(parse("select a1 from t offset 5").is_err());
    }

    #[test]
    fn placeholders_numbered_left_to_right() {
        let q = parse("select a1 from t where a1 > ? and a2 < ? limit ? offset ?").unwrap();
        assert_eq!(q.n_params, 4);
        assert_eq!(q.predicates[0].param, Some(0));
        assert_eq!(q.predicates[1].param, Some(1));
        assert_eq!(q.limit_param, Some(2));
        assert_eq!(q.offset_param, Some(3));
        assert_eq!(q.limit, None);
        assert_eq!(q.offset, None);
    }

    #[test]
    fn placeholder_on_either_predicate_side() {
        let q = parse("select a1 from t where ? < a1").unwrap();
        assert_eq!(q.predicates[0].op, CmpOp::Gt);
        assert_eq!(q.predicates[0].param, Some(0));
    }

    #[test]
    fn create_table_as_parses() {
        let s = parse_statement("create table hot as select a1 from t where a1 > 5").unwrap();
        match s {
            Statement::CreateTableAs { name, query } => {
                assert_eq!(name, "hot");
                assert_eq!(query.table, "t");
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // Plain selects also come through parse_statement.
        assert!(matches!(
            parse_statement("select 1 from t").unwrap(),
            Statement::Select(_)
        ));
        // Params inside CTAS are rejected.
        assert!(parse_statement("create table x as select a1 from t where a1 > ?").is_err());
    }
}
