//! # nodb-sql — declarative interface
//!
//! "Expressing queries in the declarative SQL language is a major benefit of
//! a DBMS" (§2.2). A hand-rolled lexer ([`lexer`]), recursive-descent parser
//! ([`ast`]) and name resolver ([`plan`](mod@plan)) covering the paper's query shapes:
//! aggregates, conjunctive range predicates, equi-joins, grouping, ordering
//! and limits. The planner's [`plan::Plan`] exposes per-table referenced
//! columns and predicate splits — the inputs the adaptive loading policies
//! consume.

pub mod ast;
pub mod lexer;
pub mod plan;

pub use ast::{parse, parse_statement, AstQuery, Statement};
pub use plan::{plan, plan_sql, OutputExpr, ParamSite, Plan, ResolvedJoin, SchemaProvider};
