//! External sort + merge join — the paper's `sort(1)`-then-Awk baseline.
//!
//! §2.2: "it takes 247 seconds if we sort the data (using the Unix sort
//! tool) and then implement a merge join in Awk (a 100 lines script)".
//! This module is that pipeline: an external multi-way merge sort of a CSV
//! by an integer key column (bounded memory, spill runs to disk), followed
//! by a streaming merge join over the two sorted files.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use nodb_exec::{Accumulator, AggSpec, Expr};
use nodb_rawcsv::tokenizer::{field_end, parse_field, CsvOptions};
use nodb_types::{DataType, Error, Result, Schema, Value, WorkCounters};

/// Extract the integer key from a CSV line.
fn line_key(line: &[u8], key_col: usize, csv: &CsvOptions) -> Result<i64> {
    let mut pos = 0usize;
    for col in 0.. {
        let fe = field_end(line, pos, csv.delimiter, csv.quote);
        if col == key_col {
            return match parse_field(&line[pos..fe], DataType::Int64, csv.quote)? {
                Value::Int(k) => Ok(k),
                other => Err(Error::parse(format!(
                    "sort key must be a non-null integer, found {other}"
                ))),
            };
        }
        if line.get(fe) == Some(&csv.delimiter) {
            pos = fe + 1;
        } else {
            break;
        }
    }
    Err(Error::parse(format!(
        "row has no column {key_col} for sort key"
    )))
}

/// Externally sort a CSV file by an integer key column, producing a new CSV.
/// At most `mem_rows` lines are held in memory at a time; overflow spills
/// sorted runs to `run_dir` and a k-way heap merge produces the output.
/// Returns the number of runs used (1 = fit in memory).
pub fn external_sort(
    input: &Path,
    output: &Path,
    key_col: usize,
    mem_rows: usize,
    run_dir: &Path,
    csv: &CsvOptions,
    counters: &WorkCounters,
) -> Result<usize> {
    if mem_rows == 0 {
        return Err(Error::exec("mem_rows must be positive"));
    }
    std::fs::create_dir_all(run_dir)?;
    counters.add_file_trip();
    let mut reader = BufReader::with_capacity(1 << 16, File::open(input)?);
    let mut buf: Vec<(i64, Vec<u8>)> = Vec::with_capacity(mem_rows.min(1 << 20));
    let mut runs: Vec<PathBuf> = Vec::new();
    let mut line: Vec<u8> = Vec::new();
    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            break;
        }
        counters.add_bytes_read(n as u64);
        let mut content: &[u8] = &line;
        if content.last() == Some(&b'\n') {
            content = &content[..content.len() - 1];
        }
        if content.last() == Some(&b'\r') {
            content = &content[..content.len() - 1];
        }
        if content.is_empty() {
            continue;
        }
        let key = line_key(content, key_col, csv)?;
        counters.add_values_parsed(1);
        buf.push((key, content.to_vec()));
        if buf.len() >= mem_rows {
            runs.push(spill_run(&mut buf, run_dir, runs.len(), counters)?);
        }
    }

    if runs.is_empty() {
        // Everything fits: sort and write directly.
        buf.sort_by_key(|(k, _)| *k);
        let mut w = BufWriter::with_capacity(1 << 16, File::create(output)?);
        let mut written = 0u64;
        for (_, l) in &buf {
            w.write_all(l)?;
            w.write_all(b"\n")?;
            written += l.len() as u64 + 1;
        }
        w.flush()?;
        counters.add_bytes_written(written);
        return Ok(1);
    }
    if !buf.is_empty() {
        runs.push(spill_run(&mut buf, run_dir, runs.len(), counters)?);
    }

    // K-way merge of the sorted runs.
    let mut readers: Vec<BufReader<File>> = runs
        .iter()
        .map(|p| Ok(BufReader::with_capacity(1 << 16, File::open(p)?)))
        .collect::<Result<_>>()?;
    for _ in &runs {
        counters.add_file_trip();
    }
    let mut heap: BinaryHeap<Reverse<(i64, usize, Vec<u8>)>> = BinaryHeap::new();
    for (i, r) in readers.iter_mut().enumerate() {
        if let Some((k, l)) = next_line(r, key_col, csv, counters)? {
            heap.push(Reverse((k, i, l)));
        }
    }
    let mut w = BufWriter::with_capacity(1 << 16, File::create(output)?);
    let mut written = 0u64;
    while let Some(Reverse((_, i, l))) = heap.pop() {
        w.write_all(&l)?;
        w.write_all(b"\n")?;
        written += l.len() as u64 + 1;
        if let Some((k, l)) = next_line(&mut readers[i], key_col, csv, counters)? {
            heap.push(Reverse((k, i, l)));
        }
    }
    w.flush()?;
    counters.add_bytes_written(written);
    let n_runs = runs.len();
    for p in runs {
        let _ = std::fs::remove_file(p);
    }
    Ok(n_runs)
}

fn spill_run(
    buf: &mut Vec<(i64, Vec<u8>)>,
    run_dir: &Path,
    idx: usize,
    counters: &WorkCounters,
) -> Result<PathBuf> {
    buf.sort_by_key(|(k, _)| *k);
    let p = run_dir.join(format!("run{idx}.csv"));
    let mut w = BufWriter::with_capacity(1 << 16, File::create(&p)?);
    let mut written = 0u64;
    for (_, l) in buf.iter() {
        w.write_all(l)?;
        w.write_all(b"\n")?;
        written += l.len() as u64 + 1;
    }
    w.flush()?;
    counters.add_bytes_written(written);
    buf.clear();
    Ok(p)
}

fn next_line(
    r: &mut BufReader<File>,
    key_col: usize,
    csv: &CsvOptions,
    counters: &WorkCounters,
) -> Result<Option<(i64, Vec<u8>)>> {
    let mut line = Vec::new();
    loop {
        line.clear();
        let n = r.read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(None);
        }
        counters.add_bytes_read(n as u64);
        if line.last() == Some(&b'\n') {
            line.pop();
        }
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        if line.is_empty() {
            continue;
        }
        let k = line_key(&line, key_col, csv)?;
        return Ok(Some((k, std::mem::take(&mut line))));
    }
}

/// Streaming merge join over two key-sorted CSV files, feeding combined
/// rows (left columns then right columns) into aggregates. Handles
/// duplicate keys by buffering equal-key groups (cross product).
#[allow(clippy::too_many_arguments)]
pub fn merge_join_aggregate(
    left: &Path,
    left_schema: &Schema,
    left_key: usize,
    right: &Path,
    right_schema: &Schema,
    right_key: usize,
    specs: &[AggSpec],
    csv: &CsvOptions,
    counters: &WorkCounters,
) -> Result<Vec<Value>> {
    counters.add_file_trip();
    counters.add_file_trip();
    let mut lr = RowStream::new(left, left_schema.clone(), left_key, csv.clone())?;
    let mut rr = RowStream::new(right, right_schema.clone(), right_key, csv.clone())?;
    let mut accs: Vec<Accumulator> = specs.iter().map(|s| Accumulator::new(s.func)).collect();
    let lw = left_schema.len();
    let mut combined: Vec<Value> = vec![Value::Null; lw + right_schema.len()];

    let mut lgroup = lr.next_group(counters)?;
    let mut rgroup = rr.next_group(counters)?;
    while let (Some((lk, lrows)), Some((rk, rrows))) = (&lgroup, &rgroup) {
        match lk.cmp(rk) {
            std::cmp::Ordering::Less => lgroup = lr.next_group(counters)?,
            std::cmp::Ordering::Greater => rgroup = rr.next_group(counters)?,
            std::cmp::Ordering::Equal => {
                for lrow in lrows {
                    combined[..lw].clone_from_slice(lrow);
                    for rrow in rrows {
                        combined[lw..].clone_from_slice(rrow);
                        for (acc, spec) in accs.iter_mut().zip(specs) {
                            match &spec.expr {
                                None => acc.update(&Value::Null)?,
                                Some(Expr::Col(c)) => acc.update(&combined[*c])?,
                                Some(e) => acc.update(&e.eval_row(&combined)?)?,
                            }
                        }
                    }
                }
                lgroup = lr.next_group(counters)?;
                rgroup = rr.next_group(counters)?;
            }
        }
    }
    accs.iter().map(|a| a.finish()).collect()
}

/// Reads a key-sorted CSV as groups of fully parsed rows sharing a key.
struct RowStream {
    reader: BufReader<File>,
    schema: Schema,
    key_col: usize,
    csv: CsvOptions,
    pending: Option<(i64, Vec<Value>)>,
    last_key: Option<i64>,
}

impl RowStream {
    fn new(path: &Path, schema: Schema, key_col: usize, csv: CsvOptions) -> Result<RowStream> {
        Ok(RowStream {
            reader: BufReader::with_capacity(1 << 16, File::open(path)?),
            schema,
            key_col,
            csv,
            pending: None,
            last_key: None,
        })
    }

    fn next_row(&mut self, counters: &WorkCounters) -> Result<Option<(i64, Vec<Value>)>> {
        let mut line = Vec::new();
        loop {
            line.clear();
            let n = self.reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                return Ok(None);
            }
            counters.add_bytes_read(n as u64);
            if line.last() == Some(&b'\n') {
                line.pop();
            }
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            if line.is_empty() {
                continue;
            }
            counters.add_rows_tokenized(1);
            let mut row = vec![Value::Null; self.schema.len()];
            let mut pos = 0usize;
            for (col, slot) in row.iter_mut().enumerate() {
                let fe = field_end(&line, pos, self.csv.delimiter, self.csv.quote);
                counters.add_fields_tokenized(1);
                let ty = self.schema.field(col).expect("in range").data_type;
                *slot = parse_field(&line[pos..fe], ty, self.csv.quote)?;
                counters.add_values_parsed(1);
                if line.get(fe) == Some(&self.csv.delimiter) {
                    pos = fe + 1;
                } else {
                    break;
                }
            }
            let key = match &row[self.key_col] {
                Value::Int(k) => *k,
                other => {
                    return Err(Error::parse(format!(
                        "merge join key must be integer, found {other}"
                    )))
                }
            };
            if let Some(last) = self.last_key {
                if key < last {
                    return Err(Error::exec(format!(
                        "input not sorted: key {key} after {last}"
                    )));
                }
            }
            self.last_key = Some(key);
            return Ok(Some((key, row)));
        }
    }

    /// The next group of rows sharing one key.
    fn next_group(&mut self, counters: &WorkCounters) -> Result<Option<(i64, Vec<Vec<Value>>)>> {
        let (key, first) = match self.pending.take() {
            Some(kr) => kr,
            None => match self.next_row(counters)? {
                Some(kr) => kr,
                None => return Ok(None),
            },
        };
        let mut rows = vec![first];
        loop {
            match self.next_row(counters)? {
                None => break,
                Some((k, r)) if k == key => rows.push(r),
                Some(other) => {
                    self.pending = Some(other);
                    break;
                }
            }
        }
        Ok(Some((key, rows)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_exec::AggFunc;
    use std::path::PathBuf;

    fn dir() -> PathBuf {
        let d = std::env::temp_dir().join("nodb_extsort_test");
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn write(name: &str, content: &str) -> PathBuf {
        let p = dir().join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn read_keys(p: &Path) -> Vec<i64> {
        std::fs::read_to_string(p)
            .unwrap()
            .lines()
            .map(|l| l.split(',').next().unwrap().parse().unwrap())
            .collect()
    }

    #[test]
    fn in_memory_sort() {
        let input = write("mem.csv", "3,c\n1,a\n2,b\n");
        let out = dir().join("mem_sorted.csv");
        let c = WorkCounters::new();
        let runs = external_sort(
            &input,
            &out,
            0,
            100,
            &dir().join("runs_mem"),
            &CsvOptions::default(),
            &c,
        )
        .unwrap();
        assert_eq!(runs, 1);
        assert_eq!(read_keys(&out), vec![1, 2, 3]);
        // Payload travels with the key.
        let text = std::fs::read_to_string(&out).unwrap();
        assert_eq!(text, "1,a\n2,b\n3,c\n");
    }

    #[test]
    fn spilling_multiway_merge() {
        let mut content = String::new();
        let n = 1000;
        for i in 0..n {
            // Reverse order to force real sorting work.
            content.push_str(&format!("{},p{}\n", n - 1 - i, n - 1 - i));
        }
        let input = write("spill.csv", &content);
        let out = dir().join("spill_sorted.csv");
        let c = WorkCounters::new();
        let runs = external_sort(
            &input,
            &out,
            0,
            64, // force ~16 runs
            &dir().join("runs_spill"),
            &CsvOptions::default(),
            &c,
        )
        .unwrap();
        assert!(runs > 10, "expected many runs, got {runs}");
        let keys = read_keys(&out);
        assert_eq!(keys.len(), n as usize);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        assert!(c.snapshot().bytes_written > 0);
        // Run files cleaned up.
        assert!(std::fs::read_dir(dir().join("runs_spill"))
            .unwrap()
            .next()
            .is_none());
    }

    #[test]
    fn duplicate_keys_preserved() {
        let input = write("dups.csv", "2,x\n1,y\n2,z\n1,w\n");
        let out = dir().join("dups_sorted.csv");
        let c = WorkCounters::new();
        external_sort(
            &input,
            &out,
            0,
            2,
            &dir().join("runs_dups"),
            &CsvOptions::default(),
            &c,
        )
        .unwrap();
        assert_eq!(read_keys(&out), vec![1, 1, 2, 2]);
    }

    #[test]
    fn merge_join_after_sort_matches_hash_join() {
        use crate::scripting::ScriptEngine;
        let schema = Schema::ints(2);
        // Unsorted inputs.
        let l = write("mj_l.csv", "3,30\n1,10\n2,20\n5,50\n");
        let r = write("mj_r.csv", "2,200\n5,500\n3,300\n9,900\n");
        let ls = dir().join("mj_l_sorted.csv");
        let rs = dir().join("mj_r_sorted.csv");
        let c = WorkCounters::new();
        let csv = CsvOptions::default();
        external_sort(&l, &ls, 0, 2, &dir().join("runs_l"), &csv, &c).unwrap();
        external_sort(&r, &rs, 0, 2, &dir().join("runs_r"), &csv, &c).unwrap();
        let specs = [
            AggSpec::count_star(),
            AggSpec::on_col(AggFunc::Sum, 1),
            AggSpec::on_col(AggFunc::Sum, 3),
        ];
        let merged =
            merge_join_aggregate(&ls, &schema, 0, &rs, &schema, 0, &specs, &csv, &c).unwrap();
        let hashed = ScriptEngine::awk()
            .hash_join_aggregate(&l, &schema, 0, &r, &schema, 0, &specs, &c)
            .unwrap();
        assert_eq!(merged, hashed);
        assert_eq!(merged[0], Value::Int(3)); // keys 2, 3, 5
    }

    #[test]
    fn merge_join_duplicate_keys_cross_product() {
        let schema = Schema::ints(2);
        let l = write("dup_l.csv", "1,10\n1,11\n2,20\n");
        let r = write("dup_r.csv", "1,100\n1,101\n3,300\n");
        let c = WorkCounters::new();
        let out = merge_join_aggregate(
            &l,
            &schema,
            0,
            &r,
            &schema,
            0,
            &[AggSpec::count_star()],
            &CsvOptions::default(),
            &c,
        )
        .unwrap();
        assert_eq!(out[0], Value::Int(4), "2 left × 2 right matches on key 1");
    }

    #[test]
    fn unsorted_input_to_merge_join_detected() {
        let schema = Schema::ints(2);
        let l = write("unsorted_l.csv", "2,20\n1,10\n");
        let r = write("unsorted_r.csv", "1,100\n2,200\n");
        let c = WorkCounters::new();
        let err = merge_join_aggregate(
            &l,
            &schema,
            0,
            &r,
            &schema,
            0,
            &[AggSpec::count_star()],
            &CsvOptions::default(),
            &c,
        );
        assert!(err.is_err());
    }

    #[test]
    fn bad_key_column_errors() {
        let input = write("badkey.csv", "x,1\n");
        let out = dir().join("badkey_sorted.csv");
        let c = WorkCounters::new();
        assert!(external_sort(
            &input,
            &out,
            0,
            10,
            &dir().join("runs_bad"),
            &CsvOptions::default(),
            &c
        )
        .is_err());
    }
}
