//! # nodb-baselines — the paper's comparison systems
//!
//! Reimplementations of the non-DBMS tools the paper measures against, as
//! libraries, so the benchmark harnesses compare algorithmic shape rather
//! than binaries:
//!
//! * [`scripting`] — the Awk baseline (streaming single-pass queries with
//!   pushed-down selections and early row abandonment), its Perl-style
//!   materialising variant, and a streaming hash join;
//! * [`extsort`] — the `sort(1)` + merge-join pipeline: external multi-way
//!   merge sort by an integer key, then a streaming merge join.

pub mod extsort;
pub mod scripting;

pub use extsort::{external_sort, merge_join_aggregate};
pub use scripting::{ScriptEngine, ScriptMode};
