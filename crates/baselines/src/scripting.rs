//! The "Awk" baseline: a single-pass streaming script engine.
//!
//! The paper's §2 study pits a DBMS against hand-optimised Awk scripts. This
//! module reimplements those scripts as a library so the comparison measures
//! algorithmic shape, not gawk's C implementation:
//!
//! * one streaming pass over the CSV per query — no state survives a query
//!   (the defining property: "a scripting tool has a constant performance
//!   that cannot improve over time");
//! * the same optimisations the authors gave their scripts: selections
//!   pushed down, rows abandoned at the first failing predicate, fields
//!   after the last referenced column never tokenized;
//! * a [`ScriptMode::Materialized`] variant that splits and boxes *every*
//!   field of every row first — modelling the paper's Perl scripts, which
//!   ran "two times slower than the Awk scripts";
//! * a streaming hash join (build one file into memory, probe the other),
//!   matching the paper's 387-second Awk hash join experiment.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

use nodb_exec::{Accumulator, AggSpec, Expr};
use nodb_rawcsv::tokenizer::{field_end, parse_field, CsvOptions};
use nodb_types::{Conjunction, Error, Result, Schema, Value, WorkCounters};

/// How the script materialises rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScriptMode {
    /// Awk-style: tokenize lazily, stop at the last referenced field,
    /// abandon rows on the first failing predicate.
    Optimized,
    /// Perl-style: split and box every field of every row before looking
    /// at predicates (roughly 2× the work on narrow queries).
    Materialized,
}

/// The streaming script engine.
#[derive(Debug, Clone)]
pub struct ScriptEngine {
    /// Row materialisation behaviour.
    pub mode: ScriptMode,
    /// CSV dialect.
    pub csv: CsvOptions,
}

impl ScriptEngine {
    /// An Awk-like engine with default CSV options.
    pub fn awk() -> ScriptEngine {
        ScriptEngine {
            mode: ScriptMode::Optimized,
            csv: CsvOptions::default(),
        }
    }

    /// A Perl-like engine (materialises every field).
    pub fn perl() -> ScriptEngine {
        ScriptEngine {
            mode: ScriptMode::Materialized,
            csv: CsvOptions::default(),
        }
    }

    /// Run a filtered aggregation over a CSV file in one streaming pass —
    /// the paper's Q1/Q2 shape (`select agg(..) where conjunction`).
    pub fn aggregate_query(
        &self,
        path: &Path,
        schema: &Schema,
        specs: &[AggSpec],
        filter: &Conjunction,
        counters: &WorkCounters,
    ) -> Result<Vec<Value>> {
        let mut accs: Vec<Accumulator> = specs.iter().map(|s| Accumulator::new(s.func)).collect();
        self.stream(
            path,
            schema,
            filter,
            specs,
            counters,
            |vals, accs_row| {
                for (acc, spec) in accs_row.iter_mut().zip(specs) {
                    match &spec.expr {
                        None => acc.update(&Value::Null)?,
                        Some(Expr::Col(c)) => acc.update(&vals[*c])?,
                        Some(e) => acc.update(&e.eval_row(vals)?)?,
                    }
                }
                Ok(())
            },
            &mut accs,
        )?;
        accs.iter().map(|a| a.finish()).collect()
    }

    /// Count qualifying rows (the `awk 'cond {n++} END {print n}'` shape).
    pub fn count_query(
        &self,
        path: &Path,
        schema: &Schema,
        filter: &Conjunction,
        counters: &WorkCounters,
    ) -> Result<u64> {
        let out = self.aggregate_query(path, schema, &[AggSpec::count_star()], filter, counters)?;
        Ok(out[0].as_i64().unwrap_or(0) as u64)
    }

    /// Streaming hash join with aggregations — the paper's §2.2 join
    /// experiment, modelled the way the Awk script actually works:
    /// `r[$1] = $0` stores the *whole raw line* in an associative array
    /// keyed by the key *string*; matched lines are re-split at probe time.
    /// (This string-heavy storage is precisely why the paper's Awk hash
    /// join lost to the sort+merge pipeline at scale.)
    #[allow(clippy::too_many_arguments)]
    pub fn hash_join_aggregate(
        &self,
        left: &Path,
        left_schema: &Schema,
        left_key: usize,
        right: &Path,
        right_schema: &Schema,
        right_key: usize,
        specs: &[AggSpec],
        counters: &WorkCounters,
    ) -> Result<Vec<Value>> {
        // Build phase: key string -> raw lines (awk's `r[$1] = $0`).
        let mut table: HashMap<Vec<u8>, Vec<Vec<u8>>> = HashMap::new();
        self.for_each_raw_line(left, counters, |line| {
            if let Some(k) = key_field_at(line, left_key, &self.csv) {
                table.entry(k.to_vec()).or_default().push(line.to_vec());
            }
            Ok(())
        })?;
        // Probe phase: parse the stored left line + the streamed right line.
        let mut accs: Vec<Accumulator> = specs.iter().map(|s| Accumulator::new(s.func)).collect();
        let lw = left_schema.len();
        let mut combined: Vec<Value> = vec![Value::Null; lw + right_schema.len()];
        self.for_each_raw_line(right, counters, |line| {
            let Some(k) = key_field_at(line, right_key, &self.csv) else {
                return Ok(());
            };
            if let Some(matches) = table.get(k) {
                parse_line_into(line, right_schema, &self.csv, &mut combined[lw..], counters)?;
                for lline in matches {
                    parse_line_into(lline, left_schema, &self.csv, &mut combined[..lw], counters)?;
                    for (acc, spec) in accs.iter_mut().zip(specs) {
                        match &spec.expr {
                            None => acc.update(&Value::Null)?,
                            Some(Expr::Col(c)) => acc.update(&combined[*c])?,
                            Some(e) => acc.update(&e.eval_row(&combined)?)?,
                        }
                    }
                }
            }
            Ok(())
        })?;
        accs.iter().map(|a| a.finish()).collect()
    }

    /// Stream raw (terminator-trimmed, non-empty) lines of a file.
    fn for_each_raw_line(
        &self,
        path: &Path,
        counters: &WorkCounters,
        mut visit: impl FnMut(&[u8]) -> Result<()>,
    ) -> Result<()> {
        counters.add_file_trip();
        let mut reader = BufReader::with_capacity(1 << 16, File::open(path)?);
        let mut line: Vec<u8> = Vec::with_capacity(256);
        loop {
            line.clear();
            let n = reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                return Ok(());
            }
            counters.add_bytes_read(n as u64);
            let mut content: &[u8] = &line;
            if content.last() == Some(&b'\n') {
                content = &content[..content.len() - 1];
            }
            if content.last() == Some(&b'\r') {
                content = &content[..content.len() - 1];
            }
            if content.is_empty() {
                continue;
            }
            counters.add_rows_tokenized(1);
            visit(content)?;
        }
    }

    /// Shared streaming kernel for aggregate queries.
    #[allow(clippy::too_many_arguments)]
    fn stream(
        &self,
        path: &Path,
        schema: &Schema,
        filter: &Conjunction,
        specs: &[AggSpec],
        counters: &WorkCounters,
        mut visit: impl FnMut(&[Value], &mut Vec<Accumulator>) -> Result<()>,
        accs: &mut Vec<Accumulator>,
    ) -> Result<()> {
        let mut needed: Vec<usize> = specs.iter().flat_map(|s| s.columns()).collect();
        needed.extend(filter.columns());
        needed.sort_unstable();
        needed.dedup();
        self.for_each_row(path, schema, filter, &needed, counters, |vals| {
            visit(vals, accs)
        })
    }

    /// Stream qualifying rows of a file through a visitor. `needed` are the
    /// columns that must carry parsed values (others stay NULL in the row
    /// buffer). Applies `filter` with early row abandonment in Optimized
    /// mode; Materialized mode parses everything first.
    pub fn for_each_row(
        &self,
        path: &Path,
        schema: &Schema,
        filter: &Conjunction,
        needed: &[usize],
        counters: &WorkCounters,
        mut visit: impl FnMut(&[Value]) -> Result<()>,
    ) -> Result<()> {
        counters.add_file_trip();
        let mut reader = BufReader::with_capacity(1 << 16, File::open(path)?);
        let mut line: Vec<u8> = Vec::with_capacity(256);
        let width = schema.len();
        let mut row: Vec<Value> = vec![Value::Null; width];
        let max_needed = match self.mode {
            ScriptMode::Optimized => {
                let from_needed = needed.iter().copied().max();
                let from_filter = filter.columns().into_iter().max();
                match (from_needed, from_filter) {
                    (Some(a), Some(b)) => a.max(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => 0,
                }
            }
            ScriptMode::Materialized => width.saturating_sub(1),
        };
        let needed_mask: Vec<bool> = {
            let mut m = vec![self.mode == ScriptMode::Materialized; width];
            for &c in needed {
                if c < width {
                    m[c] = true;
                }
            }
            for c in filter.columns() {
                if c < width {
                    m[c] = true;
                }
            }
            m
        };
        let mut rownum: u64 = 0;
        loop {
            line.clear();
            let n = reader.read_until(b'\n', &mut line)?;
            if n == 0 {
                break;
            }
            counters.add_bytes_read(n as u64);
            // Trim the terminator.
            let mut content: &[u8] = &line;
            if content.last() == Some(&b'\n') {
                content = &content[..content.len() - 1];
            }
            if content.last() == Some(&b'\r') {
                content = &content[..content.len() - 1];
            }
            if content.is_empty() {
                continue;
            }
            counters.add_rows_tokenized(1);
            rownum += 1;
            for v in row.iter_mut() {
                *v = Value::Null;
            }
            let mut pos = 0usize;
            let mut qualified = true;
            for col in 0..=max_needed.min(width.saturating_sub(1)) {
                let fe = field_end(content, pos, self.csv.delimiter, self.csv.quote);
                counters.add_fields_tokenized(1);
                if needed_mask[col] {
                    let ty = schema.field(col).expect("within width").data_type;
                    let v = parse_field(&content[pos..fe], ty, self.csv.quote)
                        .map_err(|e| Error::parse(format!("row {rownum}: {e}")))?;
                    counters.add_values_parsed(1);
                    if self.mode == ScriptMode::Optimized {
                        // Early abandonment on the first failing predicate.
                        if filter.preds_on(col).any(|p| !p.matches(&v)) {
                            counters.add_rows_abandoned(1);
                            qualified = false;
                            break;
                        }
                    }
                    row[col] = v;
                }
                if content.get(fe) == Some(&self.csv.delimiter) {
                    pos = fe + 1;
                } else {
                    break;
                }
            }
            if self.mode == ScriptMode::Materialized {
                qualified = filter.matches_row(&row);
                if !qualified {
                    counters.add_rows_abandoned(1);
                }
            }
            if qualified {
                visit(&row)?;
            }
        }
        Ok(())
    }
}

/// Raw bytes of field `col` in a line, `None` if the line is too short.
fn key_field_at<'a>(line: &'a [u8], col: usize, csv: &CsvOptions) -> Option<&'a [u8]> {
    let mut pos = 0usize;
    for c in 0.. {
        let fe = field_end(line, pos, csv.delimiter, csv.quote);
        if c == col {
            return Some(&line[pos..fe]);
        }
        if line.get(fe) == Some(&csv.delimiter) {
            pos = fe + 1;
        } else {
            return None;
        }
    }
    None
}

/// Parse every field of a raw line into the value buffer (awk re-splitting
/// a stored `$0`). Missing trailing fields become NULL.
fn parse_line_into(
    line: &[u8],
    schema: &Schema,
    csv: &CsvOptions,
    out: &mut [Value],
    counters: &WorkCounters,
) -> Result<()> {
    for v in out.iter_mut() {
        *v = Value::Null;
    }
    let mut pos = 0usize;
    for (col, slot) in out.iter_mut().enumerate().take(schema.len()) {
        let fe = field_end(line, pos, csv.delimiter, csv.quote);
        counters.add_fields_tokenized(1);
        let ty = schema.field(col).expect("in range").data_type;
        *slot = parse_field(&line[pos..fe], ty, csv.quote)?;
        counters.add_values_parsed(1);
        if line.get(fe) == Some(&csv.delimiter) {
            pos = fe + 1;
        } else {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodb_exec::AggFunc;
    use nodb_types::{CmpOp, ColPred};
    use std::path::PathBuf;

    fn write(name: &str, content: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("nodb_scripting_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::write(&p, content).unwrap();
        p
    }

    fn range(col: usize, lo: i64, hi: i64) -> Conjunction {
        Conjunction::new(vec![
            ColPred::new(col, CmpOp::Gt, lo),
            ColPred::new(col, CmpOp::Lt, hi),
        ])
    }

    #[test]
    fn q1_style_aggregation() {
        let p = write("q1.csv", "0,10\n1,11\n2,12\n3,13\n4,14\n");
        let schema = Schema::ints(2);
        let c = WorkCounters::new();
        let out = ScriptEngine::awk()
            .aggregate_query(
                &p,
                &schema,
                &[
                    AggSpec::on_col(AggFunc::Sum, 0),
                    AggSpec::on_col(AggFunc::Avg, 1),
                    AggSpec::count_star(),
                ],
                &range(0, 0, 4),
                &c,
            )
            .unwrap();
        assert_eq!(out[0], Value::Int(6));
        assert_eq!(out[1], Value::Float(12.0));
        assert_eq!(out[2], Value::Int(3));
        assert_eq!(c.snapshot().file_trips, 1);
    }

    #[test]
    fn constant_cost_per_query() {
        let p = write("const.csv", "1,2\n3,4\n5,6\n");
        let schema = Schema::ints(2);
        let eng = ScriptEngine::awk();
        let c1 = WorkCounters::new();
        eng.count_query(&p, &schema, &Conjunction::always(), &c1)
            .unwrap();
        let c2 = WorkCounters::new();
        eng.count_query(&p, &schema, &Conjunction::always(), &c2)
            .unwrap();
        // No learning: identical work both times.
        assert_eq!(c1.snapshot(), c2.snapshot());
    }

    #[test]
    fn optimized_mode_abandons_early() {
        let p = write("abandon.csv", "1,10\n2,20\n3,30\n");
        let schema = Schema::ints(2);
        let c = WorkCounters::new();
        let filter = Conjunction::new(vec![ColPred::new(0, CmpOp::Eq, 2i64)]);
        ScriptEngine::awk()
            .aggregate_query(
                &p,
                &schema,
                &[AggSpec::on_col(AggFunc::Sum, 1)],
                &filter,
                &c,
            )
            .unwrap();
        let s = c.snapshot();
        assert_eq!(s.rows_abandoned, 2);
        // Col 1 parsed only for the qualifying row: 3 (col0) + 1 (col1).
        assert_eq!(s.values_parsed, 4);
    }

    #[test]
    fn materialized_mode_parses_everything() {
        let p = write("perl.csv", "1,10,100\n2,20,200\n");
        let schema = Schema::ints(3);
        let c = WorkCounters::new();
        let filter = Conjunction::new(vec![ColPred::new(0, CmpOp::Eq, 1i64)]);
        let out = ScriptEngine::perl()
            .aggregate_query(
                &p,
                &schema,
                &[AggSpec::on_col(AggFunc::Sum, 1)],
                &filter,
                &c,
            )
            .unwrap();
        assert_eq!(out[0], Value::Int(10));
        // Every field of every row parsed: 2 rows × 3 cols.
        assert_eq!(c.snapshot().values_parsed, 6);
    }

    #[test]
    fn perl_does_more_work_than_awk_on_narrow_queries() {
        let mut data = String::new();
        for i in 0..100 {
            data.push_str(&format!("{i},{},{},{},{}\n", i * 2, i * 3, i * 4, i * 5));
        }
        let p = write("wide.csv", &data);
        let schema = Schema::ints(5);
        let filter = range(0, 10, 20);
        let specs = [AggSpec::on_col(AggFunc::Sum, 0)];
        let ca = WorkCounters::new();
        ScriptEngine::awk()
            .aggregate_query(&p, &schema, &specs, &filter, &ca)
            .unwrap();
        let cp = WorkCounters::new();
        ScriptEngine::perl()
            .aggregate_query(&p, &schema, &specs, &filter, &cp)
            .unwrap();
        assert!(
            cp.snapshot().values_parsed > 4 * ca.snapshot().values_parsed,
            "perl {} vs awk {}",
            cp.snapshot().values_parsed,
            ca.snapshot().values_parsed
        );
    }

    #[test]
    fn hash_join_aggregate_matches_manual() {
        let l = write("jl.csv", "1,10\n2,20\n3,30\n");
        let r = write("jr.csv", "2,200\n3,300\n4,400\n");
        let schema = Schema::ints(2);
        let c = WorkCounters::new();
        let out = ScriptEngine::awk()
            .hash_join_aggregate(
                &l,
                &schema,
                0,
                &r,
                &schema,
                0,
                &[
                    AggSpec::count_star(),
                    AggSpec::on_col(AggFunc::Sum, 1), // left payload
                    AggSpec::on_col(AggFunc::Sum, 3), // right payload
                ],
                &c,
            )
            .unwrap();
        assert_eq!(out[0], Value::Int(2)); // keys 2 and 3 match
        assert_eq!(out[1], Value::Int(50));
        assert_eq!(out[2], Value::Int(500));
        assert_eq!(c.snapshot().file_trips, 2);
    }

    #[test]
    fn empty_file_yields_empty_aggregates() {
        let p = write("empty.csv", "");
        let schema = Schema::ints(1);
        let c = WorkCounters::new();
        let out = ScriptEngine::awk()
            .aggregate_query(
                &p,
                &schema,
                &[AggSpec::on_col(AggFunc::Sum, 0), AggSpec::count_star()],
                &Conjunction::always(),
                &c,
            )
            .unwrap();
        assert_eq!(out[0], Value::Null);
        assert_eq!(out[1], Value::Int(0));
    }

    #[test]
    fn short_rows_leave_nulls() {
        let p = write("short.csv", "1,2\n3\n");
        let schema = Schema::ints(2);
        let c = WorkCounters::new();
        let out = ScriptEngine::awk()
            .aggregate_query(
                &p,
                &schema,
                &[AggSpec::on_col(AggFunc::Count, 1)],
                &Conjunction::always(),
                &c,
            )
            .unwrap();
        assert_eq!(out[0], Value::Int(1), "missing field counts as NULL");
    }
}
