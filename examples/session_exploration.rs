//! The exploration loop through the session API.
//!
//! "Here are my data files. Here are my queries. Where are my results?"
//! This example walks the full loop: prepare a parameterised query once,
//! sweep its constants (zero parse/plan work per step), stream a large
//! result in batches, then keep an interesting result as a *table* and
//! query it again — no CSV export, no re-import.
//!
//! ```sh
//! cargo run --release --example session_exploration
//! ```

use std::sync::Arc;

use nodb::core::{Engine, EngineConfig, LoadingStrategy};
use nodb::types::{Result, Value};

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("nodb-session-exploration");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("events.csv");
    let mut csv = String::new();
    for i in 0..10_000i64 {
        // id, sensor, reading, flag
        csv.push_str(&format!("{i},{},{},{}\n", i % 7, (i * 37) % 1000, i % 2));
    }
    std::fs::write(&file, csv)?;

    let engine = Arc::new(Engine::new(EngineConfig::with_strategy(
        LoadingStrategy::ColumnLoads,
    )));
    engine.register_table("events", &file)?;
    let session = engine.session().with_batch_size(2048);

    // --- Prepare once, bind per exploration step. ------------------------
    let stmt = session.prepare("select count(*), avg(a3) from events where a3 > ? and a3 < ?")?;
    println!("sweeping reading ranges with one prepared statement:");
    for lo in [0i64, 250, 500, 750] {
        let out = stmt
            .bind(&[Value::Int(lo), Value::Int(lo + 250)])?
            .execute()?;
        println!(
            "  ({lo:>3}, {:>4}): count={} avg={}",
            lo + 250,
            out.rows[0][0],
            out.rows[0][1]
        );
    }
    let work = engine.counters().snapshot();
    println!(
        "plan cache: {} misses, {} hits; prepared sweep re-planned nothing\n",
        work.plan_cache_misses, work.plan_cache_hits
    );

    // --- Stream a large result batch by batch. ---------------------------
    let mut stream = session.query("select a1, a3 from events where a4 = 1 order by a3 desc")?;
    let mut batches = 0;
    let mut rows = 0;
    while let Some(batch) = stream.next_batch()? {
        batches += 1;
        rows += batch.len();
        if batches == 1 {
            println!(
                "first batch of {} rows, hottest reading: {:?}",
                batch.len(),
                batch.rows[0]
            );
        }
    }
    println!("streamed {rows} rows in {batches} batches\n");

    // --- Results are data: keep one and query it again. ------------------
    session.sql(
        "create table hot as select a1 as id, a3 as reading from events \
         where a3 > 900",
    )?;
    let before = engine.counters().snapshot();
    let n = session.sql("select count(*) from hot")?;
    let again = session.sql("select max(reading) from hot")?;
    let delta = engine.counters().snapshot().since(&before);
    println!(
        "hot results table: {} rows, max reading {} — file trips for both \
         follow-ups: {}",
        n.rows[0][0], again.rows[0][0], delta.file_trips
    );
    println!("tables now: {:?}", engine.table_names());
    Ok(())
}
