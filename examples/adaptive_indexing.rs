//! Adaptive indexing (database cracking) inside the engine, plus EXPLAIN.
//!
//! Figure 1's "Index DB" curve as a library feature: with
//! `EngineConfig::use_cracking` the adaptive store keeps a cracked copy of
//! selection columns, physically reorganising it a little more on every
//! range query — "index selection and index creation happens as a
//! side-effect of query processing". No CREATE INDEX, no tuning.
//!
//! ```sh
//! cargo run --release --example adaptive_indexing
//! ```

use nodb::core::{Engine, EngineConfig, LoadingStrategy};
use nodb::rawcsv::gen::write_unique_int_table;
use nodb::types::Result;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("nodb-adaptive-indexing");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("events.csv");
    let rows = 1_000_000;
    if !file.exists() {
        println!("generating {rows} x 2 table ...");
        write_unique_int_table(&file, rows, 2, 99)?;
    }

    let run = |label: &str, cracking: bool| -> Result<()> {
        let mut cfg = EngineConfig::with_strategy(LoadingStrategy::ColumnLoads);
        cfg.use_cracking = cracking;
        cfg.store_dir = Some(dir.join(format!("store-{cracking}")));
        let engine = Engine::new(cfg);
        engine.register_table("events", &file)?;

        // EXPLAIN before anything has loaded.
        if cracking {
            println!("--- EXPLAIN (before any load) ---");
            print!(
                "{}",
                engine.explain(
                    "select sum(a2), count(*) from events where a1 > 100000 and a1 < 200000"
                )?
            );
            println!();
        }

        // Load + query sequence: each range selection refines the cracked
        // copy, so selections keep getting cheaper.
        let mut total_ms = 0.0;
        for i in 0..10i64 {
            let lo = i * 90_000;
            let hi = lo + 100_000;
            let out = engine.sql(&format!(
                "select sum(a2), count(*) from events where a1 > {lo} and a1 < {hi}"
            ))?;
            let ms = out.stats.elapsed.as_secs_f64() * 1e3;
            if i > 0 {
                total_ms += ms; // skip the load-bearing first query
            }
            println!("{label} q{:<2} [{lo:>7}, {hi:>7}): {ms:>8.2} ms", i + 1);
        }
        println!("{label} queries 2-10 total: {total_ms:.2} ms\n");
        Ok(())
    };

    run("scan  ", false)?;
    run("crack ", true)?;
    println!("(the cracked runs converge towards contiguous-slice selections;");
    println!(" the scan runs re-filter the full column every time)");
    Ok(())
}
