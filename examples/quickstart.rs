//! Quickstart: "Here are my data files. Here are my queries."
//!
//! The NoDB promise — point the engine at a raw CSV file and fire SQL
//! immediately; no schema definition, no load step, no tuning.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use nodb::core::{Engine, EngineConfig, LoadingStrategy};
use nodb::types::Result;

fn main() -> Result<()> {
    // --- Here are my data files. ----------------------------------------
    // A plain CSV, as a scientist's instrument might dump it. No header,
    // no schema, nothing registered anywhere.
    let dir = std::env::temp_dir().join("nodb-quickstart");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("readings.csv");
    std::fs::write(
        &file,
        "1,18.6,402,ok\n\
         2,21.9,377,ok\n\
         3,19.4,413,saturated\n\
         4,24.1,399,ok\n\
         5,16.2,420,ok\n\
         6,23.3,381,noisy\n\
         7,20.8,405,ok\n\
         8,17.5,392,ok\n",
    )?;

    // --- Point the engine at them. ---------------------------------------
    let engine = Engine::new(EngineConfig::with_strategy(LoadingStrategy::ColumnLoads));
    engine.register_table("readings", &file)?;
    println!("registered {:?} — nothing read yet\n", file);

    // --- Here are my queries. --------------------------------------------
    // The first query triggers schema inference and loads only the columns
    // it references.
    for sql in [
        "select count(*) from readings",
        "select avg(a2), min(a2), max(a2) from readings where a4 = 'ok'",
        "select a4, count(*), avg(a3) from readings group by a4 order by a4",
        "select a1, a2 from readings where a2 > 20 order by a2 desc limit 3",
    ] {
        let out = engine.sql(sql)?;
        println!("> {sql}");
        println!("  columns: {:?}", out.columns);
        for row in &out.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            println!("  {}", cells.join(" | "));
        }
        println!(
            "  ({:.2} ms; {} bytes read, {} file trips)\n",
            out.stats.elapsed.as_secs_f64() * 1e3,
            out.stats.work.bytes_read,
            out.stats.work.file_trips,
        );
    }

    // --- Where are my results? Right there — and the engine learned. -----
    let info = engine.table_info("readings")?;
    println!("inferred schema:   {}", info.schema.expect("inferred"));
    println!("loaded columns:    {:?}", info.loaded_columns);
    println!("adaptive store:    {} bytes", info.store_bytes);
    println!("store hit rate:    {:.0}%", info.hit_rate * 100.0);
    Ok(())
}
