//! Automatic schema discovery and live file edits (paper §5.6 and §5.4).
//!
//! "When the user links a collection of flat files to the database, a
//! schema should be defined. Ideally, this should be done without any input
//! from the user." — and: "The user can edit or change a file at any time."
//!
//! This example links a messy mixed-type CSV with a header, shows the
//! inferred schema, queries it, then edits the file with more rows and a
//! changed value and queries again — no reload step, the engine notices.
//!
//! ```sh
//! cargo run --release --example schema_inference
//! ```

use nodb::core::Engine;
use nodb::types::Result;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("nodb-schema-demo");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("stations.csv");
    std::fs::write(
        &file,
        "station id,elevation,temp,label\n\
         101,120.5,18.3,city\n\
         102,890.0,11.2,mountain\n\
         103,15.25,21.7,coast\n\
         104,455.0,,forest\n",
    )?;

    let engine = Engine::with_defaults();
    engine.register_table("stations", &file)?;

    // Schema inference happens on first contact.
    let out = engine.sql("select count(*) from stations")?;
    println!("rows: {}", out.rows[0][0]);
    let info = engine.table_info("stations")?;
    println!("inferred schema: {}", info.schema.expect("inferred"));
    println!("(header detected and skipped; names sanitised; empty temp = NULL)\n");

    let out = engine
        .sql("select label, count(*), avg(temp) from stations group by label order by label")?;
    println!("> per-label averages (NULL temp skipped by avg):");
    for row in &out.rows {
        println!("  {} | {} | {}", row[0], row[1], row[2]);
    }

    // --- Edit the file with a text editor (well, with fs::write). --------
    println!("\nediting the raw file: adding two stations, fixing a temp ...");
    std::fs::write(
        &file,
        "station id,elevation,temp,label\n\
         101,120.5,18.3,city\n\
         102,890.0,11.2,mountain\n\
         103,15.25,21.7,coast\n\
         104,455.0,14.9,forest\n\
         105,2100.0,3.4,mountain\n\
         106,8.0,23.1,coast\n",
    )?;

    // Next query sees the new content — derived state was invalidated by
    // the fingerprint check, schema re-inferred, data re-loaded on demand.
    let out = engine
        .sql("select label, count(*), avg(temp) from stations group by label order by label")?;
    println!("> same query after the edit:");
    for row in &out.rows {
        println!("  {} | {} | {}", row[0], row[1], row[2]);
    }
    Ok(())
}
