//! Serve a generated CSV over TCP and query it with the wire client —
//! the whole "here are my data files, here are my queries" loop across
//! a network boundary.
//!
//! ```sh
//! cargo run --example server_roundtrip
//! ```

use std::sync::Arc;

use nodb::{Client, Engine, EngineConfig, NodbServer, ServerConfig, Value};

fn main() -> nodb::Result<()> {
    let dir = std::env::temp_dir().join("nodb-example-server");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("readings.csv");
    let mut csv = String::new();
    for i in 0..10_000i64 {
        csv.push_str(&format!("{},{},{}\n", i, (i * 37) % 1000, (i * 13) % 97));
    }
    std::fs::write(&path, csv)?;

    // One shared engine behind the server; nothing is loaded yet.
    let engine = Arc::new(Engine::new(EngineConfig::default()));
    engine.register_table("readings", &path)?;
    let server = NodbServer::bind(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServerConfig {
            batch_rows: 256,
            ..ServerConfig::default()
        },
    )?;
    println!("serving on {}", server.local_addr());

    let mut client = Client::connect(server.local_addr())?;

    // One-shot query: the first touch infers the schema and loads the
    // referenced columns, exactly as in process.
    let (labels, rows) = client.query_all("select count(*), sum(a2) from readings")?;
    println!("{labels:?} -> {rows:?}");

    // Prepare once, execute per exploration step with fresh binds.
    let stmt = client.prepare("select a1, a2 from readings where a2 > ? and a2 < ? limit 5")?;
    for (lo, hi) in [(100, 120), (500, 520)] {
        let mut cursor = client.execute(stmt, &[Value::Int(lo), Value::Int(hi)])?;
        let rows = client.fetch_all(&mut cursor)?;
        println!("a2 in ({lo}, {hi}): {} rows", rows.len());
    }

    // Results are paged: fetch one bounded batch, then abandon the rest.
    let mut cursor = client.query("select a1, a3 from readings where a1 > 100 order by a1")?;
    if let Some(batch) = client.fetch(&mut cursor)? {
        println!(
            "first page: {} rows of {:?}",
            batch.rows.len(),
            cursor.labels()
        );
    }
    client.cancel(&mut cursor)?;

    // The server's counters ride the same wire.
    let stats = client.stats()?;
    println!(
        "server stats: conns={} reqs={} busy={}",
        stats.connections_accepted, stats.requests_served, stats.busy_rejections
    );

    client.quit()?;
    server.shutdown(); // graceful: drains, refuses new work, joins workers
    Ok(())
}
