//! File cracking in action (paper §4).
//!
//! Runs the SplitFiles policy over a wide table and prints how the segment
//! catalog evolves: the first query splits the monolithic CSV into
//! per-column files; later queries read only the small file of the column
//! they need. Compare the bytes-read column against the raw file size.
//!
//! ```sh
//! cargo run --release --example split_files_session
//! ```

use nodb::core::{Engine, EngineConfig, LoadingStrategy};
use nodb::rawcsv::gen::write_unique_int_table;
use nodb::types::Result;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("nodb-splitfiles");
    let _ = std::fs::remove_dir_all(&dir); // fresh session: watch the splits happen
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("wide.csv");
    let rows = 150_000;
    let cols = 10;
    println!("generating {rows} x {cols} table ...");
    write_unique_int_table(&file, rows, cols, 7)?;
    let raw_mb = std::fs::metadata(&file)?.len() as f64 / 1e6;
    println!("raw file: {raw_mb:.1} MB\n");

    let mut cfg = EngineConfig::with_strategy(LoadingStrategy::SplitFiles);
    cfg.store_dir = Some(dir.join("store"));
    let engine = Engine::new(cfg);
    engine.register_table("wide", &file)?;

    // Query columns one pair at a time; the first query needs a middle
    // column, so the file splits once and the tail stays in a rest file
    // that cracks further when later queries reach into it.
    let queries = [
        (
            "select sum(a5), avg(a6) from wide",
            "first touch: splits a1..a6 + rest(a7..a10)",
        ),
        (
            "select sum(a5), avg(a6) from wide",
            "same columns again (store hit)",
        ),
        ("select sum(a1) from wide", "a1 already has its own file"),
        (
            "select sum(a9), avg(a10) from wide",
            "reaches into the rest file: cracks it",
        ),
        ("select sum(a8) from wide", "a8 now has its own file too"),
    ];

    println!(
        "{:<52} {:>8} {:>9} {:>10}",
        "query", "ms", "MB read", "segments"
    );
    println!("{}", "-".repeat(84));
    for (sql, label) in queries {
        let out = engine.sql(sql)?;
        let info = engine.table_info("wide")?;
        println!(
            "{:<52} {:>8.2} {:>9.2} {:>10}",
            label,
            out.stats.elapsed.as_secs_f64() * 1e3,
            out.stats.work.bytes_read as f64 / 1e6,
            info.segments,
        );
    }

    println!("\nsplit files on disk (the engine's private copies; the original is untouched):");
    let store = dir.join("store");
    if let Ok(entries) = std::fs::read_dir(&store) {
        let mut files: Vec<_> = entries.flatten().collect();
        files.sort_by_key(|e| e.file_name());
        for f in files {
            let len = f.metadata().map(|m| m.len()).unwrap_or(0);
            println!(
                "  {:<40} {:>8.2} MB",
                f.file_name().to_string_lossy(),
                len as f64 / 1e6
            );
        }
    }
    Ok(())
}
