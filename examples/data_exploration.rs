//! The scientist's exploratory session (paper §1.2 / §2.2).
//!
//! "Analysis of scientific data is far from a one query task. It typically
//! involves a lengthy sequence of queries which dynamically adapts ...
//! continuously zooming in and out of data areas." This example runs such a
//! session over a wide unique-integer table with the PartialLoadsV2 policy
//! and prints, per query, what the adaptive store did: file trip or
//! fragment hit, bytes touched, fragments held.
//!
//! Watch the costs fall as the engine learns the hot region.
//!
//! ```sh
//! cargo run --release --example data_exploration
//! ```

use nodb::core::{Engine, EngineConfig, LoadingStrategy};
use nodb::rawcsv::gen::write_unique_int_table;
use nodb::types::Result;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("nodb-exploration");
    std::fs::create_dir_all(&dir)?;
    let file = dir.join("survey.csv");
    let rows = 200_000;
    if !file.exists() {
        println!("generating {rows} x 8 survey table ...");
        write_unique_int_table(&file, rows, 8, 2024)?;
    }

    let mut cfg = EngineConfig::with_strategy(LoadingStrategy::PartialLoadsV2);
    cfg.store_dir = Some(dir.join("store"));
    let engine = Engine::new(cfg);
    engine.register_table("survey", &file)?;

    // The session: sweep wide, then zoom into a region, pan within it,
    // zoom further, jump out, and come back.
    let n = rows as i64;
    let session: Vec<(String, &str)> = vec![
        (q(0, 0, n / 2), "broad sweep of the lower half"),
        (q(0, n / 10, 2 * n / 10), "zoom: second decile"),
        (q(0, n / 10, 15 * n / 100), "zoom deeper: first half of it"),
        (q(0, 12 * n / 100, 14 * n / 100), "pan within the region"),
        (q(0, n / 10, 2 * n / 10), "back out one level (seen before)"),
        (q(0, 8 * n / 10, 9 * n / 10), "jump to a fresh region"),
        (q(0, 8 * n / 10, 9 * n / 10), "look again (now cached)"),
        (q(0, 0, n / 2), "the original broad sweep, revisited"),
    ];

    println!(
        "{:<44} {:>9} {:>10} {:>7} {:>10}",
        "query", "ms", "MB read", "trips", "fragments"
    );
    println!("{}", "-".repeat(85));
    for (sql, label) in &session {
        let out = engine.sql(sql)?;
        let info = engine.table_info("survey")?;
        println!(
            "{:<44} {:>9.2} {:>10.2} {:>7} {:>10}",
            label,
            out.stats.elapsed.as_secs_f64() * 1e3,
            out.stats.work.bytes_read as f64 / 1e6,
            out.stats.work.file_trips,
            info.fragments,
        );
    }

    let info = engine.table_info("survey")?;
    println!(
        "\nsession ends: {} fragments, {:.1} MB in the adaptive store, hit rate {:.0}%",
        info.fragments,
        info.store_bytes as f64 / 1e6,
        info.hit_rate * 100.0
    );
    println!("the raw file was never loaded in full — only what the session looked at.");
    Ok(())
}

/// `sum/avg` over a value region of column a1 (plus a payload column),
/// the paper's Q2 template.
fn q(col: usize, lo: i64, hi: i64) -> String {
    format!(
        "select sum(a{}), avg(a{}) from survey where a{} > {lo} and a{} < {hi}",
        col + 1,
        col + 2,
        col + 1,
        col + 1,
    )
}
