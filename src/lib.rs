#![doc = include_str!("../README.md")]
//!
//! ---
//!
//! # Crate map
//!
//! This facade re-exports the public API of the workspace. The individual
//! crates, re-exported as modules here:
//!
//! * [`types`] — values, schemas, predicates, intervals, work counters,
//!   and the shared morsel driver + batch type every parallel pipeline
//!   stage speaks.
//! * [`rawcsv`] — the raw-file substrate: generators, two-phase
//!   tokenizer (merged scans and morsel scans), positional map, schema
//!   inference, file splitting.
//! * [`store`] — the adaptive store: columns, fragments, row/PAX formats,
//!   partitioned cracking, eviction, binary persistence.
//! * [`exec`] — the adaptive kernel: columnar/volcano/hybrid operators,
//!   morsel-parallel kernels and the fused cold-pipeline operators.
//! * [`sql`] — SQL parsing and logical planning.
//! * [`core`] — the engine tying it together: catalog, loading policies,
//!   fused cold pipeline, plan cache, result cache, sessions, workload
//!   monitor.
//! * [`server`] — the concurrent TCP query server and matching blocking
//!   client: length-prefixed wire protocol, session per connection,
//!   admission control with typed BUSY backpressure.
//! * [`baselines`] — the paper's comparison systems (awk-like scripting,
//!   external sort + merge join).
//!
//! `docs/ARCHITECTURE.md` walks the end-to-end data flow; `docs/TUNING.md`
//! documents every [`EngineConfig`] knob and work counter;
//! `docs/ROBUSTNESS.md` covers cancellation, deadlines, client retry and
//! the failpoint fault-injection harness; `docs/OBSERVABILITY.md` covers
//! execution profiles, `EXPLAIN ANALYZE`, the server's latency histograms
//! and the slow-query log.

pub use nodb_baselines as baselines;
pub use nodb_core as core;
pub use nodb_exec as exec;
pub use nodb_rawcsv as rawcsv;
pub use nodb_server as server;
pub use nodb_sql as sql;
pub use nodb_store as store;
pub use nodb_types as types;

pub use nodb_core::{
    BoundStatement, Engine, EngineConfig, KernelStrategy, LoadingStrategy, Prepared, QueryOutput,
    QueryStats, QueryStream, ResultCache, Session, TableInfo,
};
pub use nodb_server::{
    latency_from_extras, Client, ConnectOptions, NodbServer, RemoteCursor, RemoteStatement,
    RetryPolicy, ServerConfig, LATENCY_SERIES,
};
pub use nodb_store::RowBatch;
pub use nodb_types::{
    CancelCheck, CancelScope, CancelToken, CountersSnapshot, DataType, Error, Field,
    LatencyHistogram, ProfileScope, ProfileSink, QueryProfile, Result, Schema, Value, WorkCounters,
};
