//! # nodb — a NoDB-style adaptive raw-file query engine
//!
//! Facade crate re-exporting the public API of the workspace. See the README
//! for a tour; the individual crates are:
//!
//! * [`types`] — values, schemas, predicates, intervals, counters.
//! * [`rawcsv`] — the raw-file substrate: generators, tokenizer, positional
//!   map, schema inference, file splitting.
//! * [`store`] — the adaptive store: columns, row/PAX formats, cracking,
//!   eviction.
//! * [`exec`] — the adaptive kernel: columnar/volcano/hybrid operators.
//! * [`sql`] — SQL parsing and logical planning.
//! * [`core`] — the engine tying it together: catalog, loading policies,
//!   optimizer, workload monitor.
//! * [`baselines`] — the paper's comparison systems (awk-like scripting,
//!   external sort + merge join).

pub use nodb_baselines as baselines;
pub use nodb_core as core;
pub use nodb_exec as exec;
pub use nodb_rawcsv as rawcsv;
pub use nodb_sql as sql;
pub use nodb_store as store;
pub use nodb_types as types;

pub use nodb_core::{
    BoundStatement, Engine, EngineConfig, LoadingStrategy, Prepared, QueryOutput, QueryStream,
    Session,
};
pub use nodb_store::RowBatch;
pub use nodb_types::{Error, Result, Value};
