//! `nodb-server` — serve a directory of raw CSV files over TCP.
//!
//! ```text
//! nodb-server --data DIR [--listen ADDR] [--threads N] [--workers N]
//!             [--max-connections N] [--max-queued N] [--batch-rows N]
//!             [--result-cache-mb N] [--query-deadline-ms N]
//!             [--slow-query-ms N]
//! ```
//!
//! Every `*.csv` directly inside `DIR` is registered as a table named
//! after its file stem. The server prints one line —
//! `nodb-server listening on <addr>` — once it is accepting (scripts
//! parse this for the ephemeral port when `--listen` ends in `:0`),
//! then serves until stdin reaches EOF or the process is signalled.

use std::sync::Arc;

use nodb::{Engine, EngineConfig, NodbServer, ServerConfig};

fn usage() -> ! {
    eprintln!(
        "usage: nodb-server --data DIR [--listen ADDR] [--threads N] \
         [--workers N] [--max-connections N] [--max-queued N] \
         [--batch-rows N] [--result-cache-mb N] [--query-deadline-ms N] \
         [--slow-query-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut data: Option<std::path::PathBuf> = None;
    let mut listen = "127.0.0.1:7632".to_owned();
    let mut engine_cfg = EngineConfig::default();
    let mut server_cfg = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--data" => data = Some(value("--data").into()),
            "--listen" => listen = value("--listen"),
            "--threads" => {
                let n = parse(&value("--threads"), "--threads");
                engine_cfg = engine_cfg.with_threads(n);
            }
            "--workers" => server_cfg.workers = parse(&value("--workers"), "--workers"),
            "--max-connections" => {
                server_cfg.max_connections = parse(&value("--max-connections"), "--max-connections")
            }
            "--max-queued" => server_cfg.max_queued = parse(&value("--max-queued"), "--max-queued"),
            "--batch-rows" => server_cfg.batch_rows = parse(&value("--batch-rows"), "--batch-rows"),
            "--result-cache-mb" => {
                engine_cfg.result_cache_bytes =
                    parse(&value("--result-cache-mb"), "--result-cache-mb") * 1024 * 1024;
            }
            "--query-deadline-ms" => {
                server_cfg.query_deadline_ms =
                    Some(parse(&value("--query-deadline-ms"), "--query-deadline-ms") as u64);
            }
            "--slow-query-ms" => {
                server_cfg.slow_query_ms =
                    Some(parse(&value("--slow-query-ms"), "--slow-query-ms") as u64);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage()
            }
        }
    }
    let Some(data) = data else { usage() };

    let engine = Arc::new(Engine::new(engine_cfg));
    let mut tables = 0usize;
    let mut entries: Vec<_> = match std::fs::read_dir(&data) {
        Ok(rd) => rd.filter_map(|e| e.ok().map(|e| e.path())).collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", data.display());
            std::process::exit(1);
        }
    };
    entries.sort();
    for path in entries {
        if path.extension().and_then(|e| e.to_str()) != Some("csv") {
            continue;
        }
        let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
            continue;
        };
        match engine.register_table(name, &path) {
            Ok(()) => {
                eprintln!("registered table {name} -> {}", path.display());
                tables += 1;
            }
            Err(e) => eprintln!("skipping {}: {e}", path.display()),
        }
    }
    if tables == 0 {
        eprintln!("warning: no .csv files found in {}", data.display());
    }

    let server = match NodbServer::bind(engine, listen.as_str(), server_cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot listen on {listen}: {e}");
            std::process::exit(1);
        }
    };
    // The one line scripts depend on; everything else goes to stderr.
    // Explicit flush: stdout is block-buffered under a pipe, and scripts
    // wait for this line before connecting.
    println!("nodb-server listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    // Serve until stdin closes (the conventional "run under a
    // supervisor / shell script" lifetime for a std-only binary).
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::stdin().read_line(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    eprintln!("draining and shutting down");
    server.shutdown();
}

fn parse(s: &str, flag: &str) -> usize {
    s.parse().unwrap_or_else(|_| {
        eprintln!("invalid value for {flag}: {s:?}");
        usage()
    })
}
