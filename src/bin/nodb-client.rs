//! `nodb-client` — run SQL against a running `nodb-server`, print CSV.
//!
//! ```text
//! nodb-client ADDR SQL [SQL ...]
//! nodb-client ADDR --stats
//! nodb-client ADDR --cancel SESSION
//! ```
//!
//! Each statement runs in order on one connection; results are printed
//! as CSV (header row of output labels, then data rows), statements
//! separated by a blank line. On connect the session id is announced on
//! stderr (`# session N`) so scripts can aim `--cancel` at it. `--stats`
//! prints the server's work-counter snapshot followed by a `MEM` row
//! (peak reservation, shed queries, shed connections, contained
//! panics), a `CACHE` row
//! breaking out the result-cache counters, and one `LATENCY` row per
//! histogram series the server published (`query`, `execute`, `fetch`,
//! `queue_wait`) with p50/p95/p99 derived client-side from the wire's
//! log2 buckets. `--cancel SESSION` aborts the
//! query currently running on another connection's session — its query
//! fails with a typed `cancelled` error within one morsel and its
//! connection stays usable. Exit status is non-zero on any error —
//! including a typed BUSY refusal when the server's admission queue is
//! full.

use nodb::{Client, Value};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, rest) = match args.split_first() {
        Some((addr, rest)) if !rest.is_empty() => (addr.clone(), rest.to_vec()),
        _ => {
            eprintln!(
                "usage: nodb-client ADDR SQL [SQL ...] | nodb-client ADDR --stats \
                 | nodb-client ADDR --cancel SESSION"
            );
            std::process::exit(2);
        }
    };

    let mut client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    // Scripts cancelling a long query grab the victim's id from here.
    eprintln!("# session {}", client.session_id());

    if rest.len() == 2 && rest[0] == "--cancel" {
        let session: u64 = rest[1].parse().unwrap_or_else(|_| {
            eprintln!("invalid session id: {:?}", rest[1]);
            std::process::exit(2);
        });
        if let Err(e) = client.cancel_query(session) {
            eprintln!("cancel failed: {e}");
            std::process::exit(1);
        }
        println!("cancelled session {session}");
        let _ = client.quit();
        return;
    }

    if rest.len() == 1 && rest[0] == "--stats" {
        match client.stats_full() {
            Ok((s, extras)) => {
                println!("{s}");
                println!(
                    "MEM reserved_peak={}B queries_shed={} conns_shed={} panics_contained={}",
                    s.mem_reserved_peak, s.queries_shed, s.conns_shed, s.panics_contained,
                );
                println!(
                    "CACHE hits={} subsumed_hits={} misses={} evictions={}",
                    s.result_cache_hits,
                    s.result_cache_subsumed_hits,
                    s.result_cache_misses,
                    s.result_cache_evictions,
                );
                // Percentiles are derived here, from the sparse log2
                // buckets the server shipped — it never computes them.
                for (series, buckets) in nodb::latency_from_extras(&extras) {
                    let count: u64 = buckets.iter().sum();
                    let pct = |p: f64| {
                        nodb::types::profile::percentile_from_buckets(&buckets, p)
                            .map(|us| format!("{us}us"))
                            .unwrap_or_else(|| "-".to_owned())
                    };
                    println!(
                        "LATENCY {series} count={count} p50={} p95={} p99={}",
                        pct(50.0),
                        pct(95.0),
                        pct(99.0),
                    );
                }
            }
            Err(e) => {
                eprintln!("stats failed: {e}");
                std::process::exit(1);
            }
        }
        let _ = client.quit();
        return;
    }

    for (i, sql) in rest.iter().enumerate() {
        if i > 0 {
            println!();
        }
        let (labels, rows) = match client.query_all(sql) {
            Ok(out) => out,
            Err(e) => {
                eprintln!("query failed: {e}");
                std::process::exit(1);
            }
        };
        println!(
            "{}",
            labels
                .iter()
                .map(|l| csv_field(l))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in rows {
            let cells: Vec<String> = row
                .iter()
                .map(|v| match v {
                    Value::Null => String::new(),
                    Value::Str(s) => csv_field(s),
                    other => other.to_string(),
                })
                .collect();
            println!("{}", cells.join(","));
        }
    }
    let _ = client.quit();
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}
