//! Offline stand-in for the `criterion` crate.
//!
//! A minimal, dependency-free benchmark harness exposing the criterion API
//! slice this workspace uses: `Criterion::benchmark_group`, group
//! `sample_size` / `throughput` / `bench_function` / `bench_with_input` /
//! `finish`, `Bencher::iter`, `BenchmarkId`, `Throughput` and the
//! `criterion_group!` / `criterion_main!` macros. It measures wall-clock
//! means over a fixed-duration measurement window and prints one line per
//! benchmark — no statistics, plots or saved baselines.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub use std::hint::black_box;

/// One finished benchmark, for the machine-readable report.
#[derive(Debug, Clone)]
struct Report {
    name: String,
    ns_per_iter: f64,
    iters: u64,
    throughput: Option<Throughput>,
}

/// Reports accumulated across every group of the process.
static REPORTS: Mutex<Vec<Report>> = Mutex::new(Vec::new());

/// Write every report gathered so far as JSON to the path in
/// `NODB_BENCH_JSON` (no-op when unset). Called by [`criterion_main!`]
/// after all groups have run, so a perf-trajectory artifact like
/// `BENCH_micro.json` falls out of any bench run:
///
/// ```sh
/// NODB_BENCH_JSON=BENCH_micro.json cargo bench -p nodb-bench --bench micro
/// ```
///
/// Besides raw ns/op per benchmark, any slow/fast name pair —
/// `<base>/serial` + `<base>/parallel`, `<base>/miss` + `<base>/hit`,
/// `<base>/rescan` + `<base>/cached`, or `<base>/off` + `<base>/on` —
/// also yields a derived `speedups` entry (slow ÷ fast): multi-core,
/// cache and overhead ratios tracked across PRs.
pub fn write_json_reports() {
    let Ok(path) = std::env::var("NODB_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let reports = REPORTS.lock().expect("reports mutex");
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"nodb-bench/1\",\n");
    out.push_str(&format!(
        "  \"threads_available\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str("  \"benches\": [\n");
    for (i, r) in reports.iter().enumerate() {
        let tp = match r.throughput {
            Some(Throughput::Bytes(n)) => format!(", \"throughput_bytes\": {n}"),
            Some(Throughput::Elements(n)) => format!(", \"throughput_elements\": {n}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": {:?}, \"ns_per_iter\": {:.1}, \"iters\": {}{}}}{}\n",
            r.name,
            r.ns_per_iter,
            r.iters,
            tp,
            if i + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"speedups\": {\n");
    const PAIRINGS: [(&str, &str); 4] = [
        ("/serial", "/parallel"),
        ("/miss", "/hit"),
        ("/rescan", "/cached"),
        ("/off", "/on"),
    ];
    let pairs: Vec<(String, f64)> = reports
        .iter()
        .filter_map(|r| {
            let (base, fast_suffix) = PAIRINGS
                .iter()
                .find_map(|(slow, fast)| Some((r.name.strip_suffix(slow)?, *fast)))?;
            let fast = reports
                .iter()
                .find(|p| p.name.strip_suffix(fast_suffix).is_some_and(|b| b == base))?;
            Some((base.to_owned(), r.ns_per_iter / fast.ns_per_iter))
        })
        .collect();
    for (i, (name, speedup)) in pairs.iter().enumerate() {
        out.push_str(&format!(
            "    {:?}: {:.3}{}\n",
            name,
            speedup,
            if i + 1 < pairs.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("# failed to write {path}: {e}");
    }
}

/// Benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    measured: Duration,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Run `f` repeatedly inside the measurement window, recording the
    /// mean iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unmeasured runs.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measure_for {
                break;
            }
        }
        self.measured = start.elapsed();
        self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    measure_for: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample count hint (accepted for API compatibility; this harness
    /// sizes the measurement window by time, not samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measure_for = d;
        self
    }

    /// Annotate throughput; reported as MB/s or Melem/s per benchmark.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measured: Duration::ZERO,
            iters: 0,
            measure_for: self.measure_for,
        };
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            measured: Duration::ZERO,
            iters: 0,
            measure_for: self.measure_for,
        };
        f(&mut b, input);
        self.report(&id.to_string(), &b);
        self
    }

    /// End the group (reports are printed as benchmarks run).
    pub fn finish(&mut self) {}

    fn report(&self, id: &str, b: &Bencher) {
        if b.iters == 0 {
            println!("{}/{id}: no iterations measured", self.name);
            return;
        }
        let per_iter = b.measured.as_secs_f64() / b.iters as f64;
        REPORTS.lock().expect("reports mutex").push(Report {
            name: format!("{}/{id}", self.name),
            ns_per_iter: per_iter * 1e9,
            iters: b.iters,
            throughput: self.throughput,
        });
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.1} MB/s)", n as f64 / per_iter / 1e6)
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.2} Melem/s)", n as f64 / per_iter / 1e6)
            }
            None => String::new(),
        };
        println!(
            "{}/{id}: {:.3} ms/iter over {} iters{rate}",
            self.name,
            per_iter * 1e3,
            b.iters
        );
    }
}

/// Top-level harness state.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // NODB_BENCH_MS overrides the per-benchmark window (CI smoke runs).
        let ms = std::env::var("NODB_BENCH_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            measure_for: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measure_for = self.measure_for;
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measure_for,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` from one or more group-runner functions. After every
/// group has run, reports are flushed as JSON when `NODB_BENCH_JSON`
/// names a path (see [`write_json_reports`]).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_reports();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        std::env::set_var("NODB_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10)
            .throughput(Throughput::Bytes(1000))
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &n| b.iter(|| n * 2));
        g.finish();
    }
}
