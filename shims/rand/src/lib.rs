//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of `rand` it uses: a seedable deterministic generator
//! ([`rngs::StdRng`]), the [`SeedableRng`] / [`Rng`] traits, and uniform
//! range sampling over the primitive types that appear in the code. The
//! generator is xoshiro256** seeded via splitmix64 — high-quality and
//! deterministic, though the exact streams differ from upstream `rand`
//! (callers here only rely on determinism, not on specific sequences).

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Deterministic generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free-enough uniform draw from `[0, n)` (n > 0).
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    // Lemire's multiply-shift; bias is negligible for the sizes used here,
    // and a single rejection pass removes most of it.
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo >= n.wrapping_neg() % n.max(1) || n.is_power_of_two() {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
            let u = r.gen_range(0usize..=3);
            assert!(u <= 3);
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_honoured() {
        let mut r = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.1)).count();
        assert!((500..2000).contains(&hits), "got {hits}");
    }

    #[test]
    fn distribution_covers_small_range() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
