//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the property-testing surface its tests use: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`, range / tuple / `Just` strategies, `collection::vec`,
//! `option::of`, `num::*::ANY`, `bool::ANY`, the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_oneof!` macros.
//!
//! Differences from the real crate: no shrinking (a failing case reports
//! its seed and values as-is), and a fixed deterministic seed sequence per
//! case index. Case counts default to [`ProptestConfig::default`](test_runner::ProptestConfig::default)'s
//! `cases` (64; override per block via `proptest_config`, or globally with
//! the `PROPTEST_CASES` env var).

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// Strategy yielding one constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-typed strategies (`prop_oneof!`).
    pub struct OneOf<S> {
        /// The alternatives.
        pub options: Vec<S>,
    }

    impl<S: Strategy> Strategy for OneOf<S> {
        type Value = S::Value;

        fn gen_value(&self, rng: &mut TestRng) -> S::Value {
            assert!(!self.options.is_empty(), "prop_oneof! needs options");
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].gen_value(rng)
        }
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    if span > u64::MAX as u128 {
                        return rng.next_u64() as $t;
                    }
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn gen_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.gen_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// Produce one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn gen_value(&self, rng: &mut TestRng) -> A {
            A::arbitrary_value(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for String {
        fn arbitrary_value(rng: &mut TestRng) -> String {
            // Deliberately adversarial alphabet: delimiters, quotes,
            // newlines, multi-byte unicode, besides plain characters.
            const ALPHABET: &[char] = &[
                'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', ',', '"', '\'', '\n', '\r', '\t', ';', '|',
                '.', '-', '_', 'é', 'λ', '中', '🦀',
            ];
            let len = (rng.next_u64() % 13) as usize;
            (0..len)
                .map(|_| ALPHABET[(rng.next_u64() % ALPHABET.len() as u64) as usize])
                .collect()
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..n).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<T>`: `None` in ~1/4 of cases (mirrors the
    /// real crate's default weighting toward `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.gen_value(rng))
            }
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The boolean strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn gen_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            pub mod $m {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Full-width strategy over the primitive type.
                #[derive(Debug, Clone, Copy)]
                pub struct Any;

                /// The full-range strategy (`proptest::num::<ty>::ANY`).
                pub const ANY: Any = Any;

                impl Strategy for Any {
                    type Value = $t;

                    fn gen_value(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )*};
    }

    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize,
             i8: i8, i16: i16, i32: i32, i64: i64, isize: isize);
}

pub mod test_runner {
    use std::fmt;

    /// Deterministic per-case generator (xorshift64*).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Generator for one test case.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(0x2545_F491_4F6C_DD1D)
                    | 1,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    /// Failure of one generated test case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failed case with the given reason.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }

        /// Alias kept for API parity (this shim never rejects cases).
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Per-block configuration (`#![proptest_config(..)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for API parity; shrinking is not implemented.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig {
                cases,
                max_shrink_iters: 0,
            }
        }
    }
}

/// Define property tests: each `fn name(bindings in strategies) { body }`
/// becomes a `#[test]` running `cases` deterministic generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@blk ($cfg) $($rest)*);
    };
    (@blk ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        case ^ 0xA5A5_0000u64,
                    );
                    $(let $arg = $crate::strategy::Strategy::gen_value(
                        &($strat), &mut __rng);)+
                    let __result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __result {
                        panic!("proptest case {case} failed: {e}");
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @blk ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} == {:?}", left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Uniform choice between same-typed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf { options: vec![$($s),+] }
    };
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (0i64..10, 0i64..10).prop_map(|(a, b)| (a, a + b))
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds and mapping applies.
        #[test]
        fn ranges_and_maps(x in -5i64..5, (lo, hi) in arb_pair(),
                           v in crate::collection::vec(0u8..3, 0..10),
                           flag in crate::bool::ANY,
                           any in crate::num::u64::ANY,
                           opt in crate::option::of(1usize..4)) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(lo <= hi, "{} > {}", lo, hi);
            prop_assert!(v.len() < 10);
            prop_assert!(v.iter().all(|&b| b < 3));
            let _ = (flag, any);
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
            prop_assert_eq!(x, x);
        }
    }

    proptest! {
        #[test]
        fn oneof_and_just(v in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v == 1 || v == 2);
        }
    }

    fn helper(ok: bool) -> Result<(), TestCaseError> {
        if ok {
            Ok(())
        } else {
            Err(TestCaseError::fail("nope"))
        }
    }

    proptest! {
        /// `?` on `Result<_, TestCaseError>` works inside bodies.
        #[test]
        fn question_mark_propagates(x in 0i64..10) {
            helper(x < 10)?;
        }
    }
}
