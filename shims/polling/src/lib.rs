//! Offline stand-in for a readiness-polling crate: the tiny slice of
//! `poll(2)` the nodb server's reactor actually uses, with no `libc`
//! dependency. On unix the symbols are declared directly against the C
//! runtime already linked into every Rust binary; elsewhere every call
//! returns `ErrorKind::Unsupported` so the workspace still compiles
//! (the reactor server is unix-only, like the fd-based multiplexing it
//! is built on).

use std::io;

/// Readable data is available (or a listening socket has a pending
/// connection).
pub const POLLIN: i16 = 0x001;
/// Writing is possible without blocking.
pub const POLLOUT: i16 = 0x004;
/// An error condition on the fd (revents only).
pub const POLLERR: i16 = 0x008;
/// The peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of a `poll(2)` set: the fd, the events the caller is
/// interested in, and the events the kernel reports back.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch; a negative fd is ignored by the
    /// kernel (its `revents` come back zero), which callers use to keep
    /// slot indices stable.
    pub fd: i32,
    /// Requested events (`POLLIN` / `POLLOUT`).
    pub events: i16,
    /// Returned events; includes `POLLERR`/`POLLHUP`/`POLLNVAL` even
    /// when not requested.
    pub revents: i16,
}

impl PollFd {
    /// Watch `fd` for `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }
}

#[cfg(unix)]
extern "C" {
    // int poll(struct pollfd *fds, nfds_t nfds, int timeout);
    // `nfds_t` is `unsigned long` on every unix Rust targets.
    fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int)
        -> std::ffi::c_int;
}

/// Block until one of `fds` is ready, the timeout elapses, or a signal
/// arrives. `timeout` is milliseconds; `None` blocks indefinitely.
/// Returns how many entries have nonzero `revents` (0 = timed out).
/// `EINTR` is mapped to `Ok(0)` — to a reactor a signal is just a
/// spurious wakeup.
#[cfg(unix)]
pub fn wait(fds: &mut [PollFd], timeout: Option<u32>) -> io::Result<usize> {
    let timeout = timeout.map_or(-1i32, |ms| ms.min(i32::MAX as u32) as i32);
    // SAFETY: `PollFd` is `#[repr(C)]` and layout-identical to
    // `struct pollfd`; the slice pointer/length pair is valid for the
    // duration of the call.
    let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout) };
    if n < 0 {
        let e = io::Error::last_os_error();
        if e.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(e);
    }
    Ok(n as usize)
}

/// Non-unix fallback: readiness polling over raw fds has no portable
/// std story, so the call is refused at runtime (the server refuses to
/// bind rather than busy-spinning blind).
#[cfg(not(unix))]
pub fn wait(_fds: &mut [PollFd], _timeout: Option<u32>) -> io::Result<usize> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "poll(2) readiness is only wired up on unix targets",
    ))
}

#[cfg(unix)]
extern "C" {
    // int getrlimit(int resource, struct rlimit *rlim);
    // int setrlimit(int resource, const struct rlimit *rlim);
    fn getrlimit(resource: std::ffi::c_int, rlim: *mut Rlimit) -> std::ffi::c_int;
    fn setrlimit(resource: std::ffi::c_int, rlim: *const Rlimit) -> std::ffi::c_int;
}

#[cfg(unix)]
#[repr(C)]
struct Rlimit {
    cur: u64,
    max: u64,
}

/// `RLIMIT_NOFILE` — 7 on linux, 8 on the BSDs/macOS. Gated per-OS so
/// the raise below adjusts the limit it means to.
#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: std::ffi::c_int = 7;
#[cfg(all(unix, not(target_os = "linux")))]
const RLIMIT_NOFILE: std::ffi::c_int = 8;

/// Raise the soft open-file limit toward its hard cap and return the
/// resulting soft limit. Needed by anything that parks thousands of
/// sockets on one process (the scale tests); a failure is reported, not
/// fatal — the caller decides whether the current limit suffices.
#[cfg(unix)]
pub fn raise_nofile_limit() -> io::Result<u64> {
    let mut lim = Rlimit { cur: 0, max: 0 };
    // SAFETY: `Rlimit` matches `struct rlimit` (two same-width fields)
    // on LP64 unix, and the pointer outlives the call.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.cur < lim.max {
        let want = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: same layout argument as above.
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } != 0 {
            return Err(io::Error::last_os_error());
        }
        return Ok(want.cur);
    }
    Ok(lim.cur)
}

/// Non-unix fallback; see [`wait`].
#[cfg(not(unix))]
pub fn raise_nofile_limit() -> io::Result<u64> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "rlimits are only wired up on unix targets",
    ))
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;

    #[test]
    fn pipe_readiness_round_trip() {
        let (mut tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        // Nothing written yet: a zero timeout reports nothing ready.
        assert_eq!(wait(&mut fds, Some(0)).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
        tx.write_all(b"x").unwrap();
        let n = wait(&mut fds, Some(1000)).unwrap();
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn hup_is_reported_on_peer_close() {
        let (tx, rx) = std::os::unix::net::UnixStream::pair().unwrap();
        drop(tx);
        let mut fds = [PollFd::new(rx.as_raw_fd(), POLLIN)];
        let n = wait(&mut fds, Some(1000)).unwrap();
        assert_eq!(n, 1);
        // Linux reports POLLHUP for a fully-closed peer on a socketpair;
        // a portable caller treats either HUP or a zero-byte read as
        // gone, so accept POLLIN too.
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }

    #[test]
    fn negative_fd_is_ignored() {
        let mut fds = [PollFd::new(-1, POLLIN)];
        assert_eq!(wait(&mut fds, Some(0)).unwrap(), 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn nofile_limit_is_queryable_and_raisable() {
        let lim = raise_nofile_limit().unwrap();
        assert!(lim >= 64, "soft fd limit {lim} is implausibly small");
    }
}
