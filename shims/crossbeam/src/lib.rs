//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::thread::scope` / `Scope::spawn` / handle `join` are
//! used in this workspace; they map directly onto `std::thread::scope`
//! (stable since 1.63). One deliberate simplification: the closure passed
//! to [`thread::Scope::spawn`] receives `()` instead of a nested `&Scope`
//! — every call site here ignores the argument (`|_| ...`), and nested
//! spawning is not used.

pub mod thread {
    use std::any::Any;

    /// Scope handle passed to the closure of [`scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle of a scoped thread.
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result (Err on panic).
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.0.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives `()` (the real
        /// crossbeam passes a nested `&Scope`; unused in this workspace).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle(self.inner.spawn(move || f(())))
        }
    }

    /// Run `f` with a scope allowing borrowing spawns; joins all threads
    /// before returning. The outer `Result` mirrors crossbeam's signature
    /// and is always `Ok` (panics in threads surface at `join`, or abort
    /// the scope as with `std::thread::scope`).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = vec![1u64, 2, 3, 4];
        let mut outs = vec![0u64; 2];
        super::thread::scope(|s| {
            let (a, b) = outs.split_at_mut(1);
            let d = &data;
            let h1 = s.spawn(move |_| a[0] = d[..2].iter().sum());
            let h2 = s.spawn(move |_| b[0] = d[2..].iter().sum());
            h1.join().unwrap();
            h2.join().unwrap();
        })
        .unwrap();
        assert_eq!(outs, vec![3, 7]);
    }
}
