//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny API slice it actually uses: [`RwLock`] and [`Mutex`] with
//! non-poisoning, non-`Result` guards. Backed by `std::sync`; a poisoned
//! lock (a panic while held) is recovered rather than propagated, matching
//! parking_lot's no-poisoning semantics.

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// `parking_lot::RwLock`-shaped reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// New lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared access; blocks until acquired.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access; blocks until acquired.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access if no one holds the lock; `None` instead of
    /// blocking when someone does (poisoning is recovered, as in
    /// [`RwLock::write`]).
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// `parking_lot::Mutex`-shaped mutual exclusion lock.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// New mutex holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Lock; blocks until acquired.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access through an exclusive reference (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn rwlock_try_write_refuses_instead_of_blocking() {
        let l = RwLock::new(1);
        {
            let _held = l.write();
            assert!(l.try_write().is_none());
        }
        *l.try_write().expect("uncontended") += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let l = Arc::clone(&l);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    *l.write() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
